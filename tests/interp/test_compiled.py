"""Compiled executor: bit-identical to the reference interpreter."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.interp import ArrayStore, execute, execute_compiled
from repro.ir import parse_program
from repro.kernels import (
    CHOLESKY_VARIANTS, blur_2d, cholesky, cholesky_variant, gemver_like,
    jacobi_1d, lu_factorization, random_program, simplified_cholesky,
)
from repro.util.errors import InterpError


def identical(p, params):
    base = ArrayStore(p, dict(params)).snapshot()
    ref, _ = execute(p, params, arrays=base)
    fast = execute_compiled(p, params, arrays=base)
    return all(
        np.array_equal(ref.arrays[k], fast.arrays[k]) for k in ref.arrays
    ) and ref.scalars == fast.scalars


class TestAgainstReference:
    @pytest.mark.parametrize(
        "factory,params",
        [
            (simplified_cholesky, {"N": 9}),
            (cholesky, {"N": 7}),
            (lu_factorization, {"N": 6}),
            (blur_2d, {"N": 7}),
            (gemver_like, {"N": 6}),
            (jacobi_1d, {"N": 8, "T": 4}),
        ],
    )
    def test_kernels_identical(self, factory, params):
        assert identical(factory(), params)

    @pytest.mark.parametrize("order", CHOLESKY_VARIANTS)
    def test_cholesky_variants_identical(self, order):
        assert identical(cholesky_variant(order), {"N": 8})

    def test_generated_code_with_guards(self):
        from repro.codegen import generate_code
        from repro.instance import Layout
        from repro.kernels import augmentation_example
        from repro.transform import skew

        aug = augmentation_example()
        lay = Layout(aug)
        g = generate_code(aug, skew(lay, "I", "J", -1).matrix)
        assert identical(g.program, {"N": 10})

    def test_divisibility_guards(self):
        from repro.codegen import generate_code
        from repro.instance import Layout
        from repro.transform import scaling

        p = parse_program(
            "param N\nreal A(0:N)\ndo I = 1..N\n S1: A(I) = A(I-1) + f(I)\nenddo"
        )
        lay = Layout(p)
        g = generate_code(p, scaling(lay, "I", 2).matrix)
        assert identical(g.program, {"N": 9})

    def test_scalars(self):
        p = parse_program(
            "param N\nreal A(N)\nacc = 0.0\ndo I = 1..N\n S2: acc = acc + A(I)\nenddo"
        )
        assert identical(p, {"N": 7})


class TestErrors:
    def test_out_of_range(self):
        p = parse_program("param N\nreal A(N)\nA(0) = 1.0")
        with pytest.raises(Exception):
            execute_compiled(p, {"N": 3})

    def test_unknown_initial_array(self):
        p = parse_program("param N\nreal A(N)\nA(1) = 1.0")
        with pytest.raises(InterpError):
            execute_compiled(p, {"N": 3}, arrays={"Z": np.zeros(3)})

    def test_division_by_zero(self):
        p = parse_program("param N\nreal A(N)\nA(1) = 1.0 / (N - N)")
        with pytest.raises(InterpError):
            execute_compiled(p, {"N": 3})


@given(st.integers(0, 50))
@settings(max_examples=25, deadline=None)
def test_random_programs_identical(seed):
    assert identical(random_program(seed), {"N": 4})
