"""Dependence analysis against the paper's displayed matrices (E3, E8,
and the §5.4 example)."""

import pytest

from repro.dependence import DepKind, analyze_dependences
from repro.instance import Layout
from repro.ir import parse_program


def entry_strs(dep):
    return list(dep.entry_strs())


class TestSimplifiedCholesky:
    """Paper §3.  The displayed flow dependence S1->S2 is [0, 1, -1, +]."""

    def test_flow_s1_s2_exact_paper_column(self, simp_chol):
        m = analyze_dependences(simp_chol)
        flows = [d for d in m.between("S1", "S2")]
        assert len(flows) == 1
        assert entry_strs(flows[0]) == ["0", "1", "-1", "+"]
        assert flows[0].level is None  # loop-independent

    def test_backward_dependence_s2_s1(self, simp_chol):
        """The paper lists [1,-1,1,0]; memory-based analysis gives '+'
        in the carried position (same sign, wider).  One column per
        kind (flow/anti/output) with identical interval entries."""
        m = analyze_dependences(simp_chol)
        back = m.between("S2", "S1")
        assert back
        assert {tuple(entry_strs(d)) for d in back} == {("+", "-1", "1", "0")}
        assert all(d.level == "I" for d in back)

    def test_value_based_refinement_recovers_paper_column(self, simp_chol):
        """Dynamic value-based refinement recovers the paper's exact
        column [1,-1,1,0] for the S2->S1 flow."""
        from repro.dependence import DepKind, refine_dependences

        m = refine_dependences(simp_chol, analyze_dependences(simp_chol))
        flows = [d for d in m.between("S2", "S1") if d.kind == DepKind.FLOW]
        assert any(entry_strs(d) == ["1", "-1", "1", "0"] for d in flows)

    def test_self_dependences_of_s2(self, simp_chol):
        m = analyze_dependences(simp_chol)
        selfs = {tuple(entry_strs(d)) for d in m.self_deps("S2")}
        assert ("+", "0", "0", "0") in selfs

    def test_no_self_dependence_of_s1(self, simp_chol):
        m = analyze_dependences(simp_chol)
        assert m.self_deps("S1") == []

    def test_all_columns_lex_positive_in_source(self, simp_chol):
        """Every dependence of a sequential program points forward."""
        m = analyze_dependences(simp_chol)
        for d in m:
            sign = _lex_sign(d.entries)
            assert sign in ("positive", "zero-or-positive")


def _lex_sign(entries):
    from repro.legality import lex_status

    return lex_status(tuple(entries))


class TestAugmentationExample:
    """Paper §5.4: D = [[1,1],[0,-1],[0,1],[1,-1]] — reproduced exactly."""

    def test_exact_matrix(self, aug):
        m = analyze_dependences(aug)
        cols = sorted(tuple(d.entry_strs()) for d in m)
        assert cols == [("1", "-1", "1", "-1"), ("1", "0", "0", "1")]

    def test_kinds(self, aug):
        m = analyze_dependences(aug)
        d_self = m.between("S1", "S1")[0]
        assert d_self.kind == DepKind.FLOW
        d_cross = m.between("S2", "S1")[0]
        assert d_cross.kind == DepKind.FLOW

    def test_arrays_attributed(self, aug):
        m = analyze_dependences(aug)
        assert m.between("S1", "S1")[0].array == "B"
        assert m.between("S2", "S1")[0].array == "A"


class TestCholesky:
    """Paper §6 matrix: our analyzer reproduces the paper's columns
    [0,0,1,-1,0,0,+], [0,1,-1,0,+,+,-] and [+,0,0,0,0,0,+] exactly, and
    finds the fourth ([1,...] in the paper) with '+' carried distance."""

    @pytest.fixture(scope="class")
    def matrix(self, chol):
        return analyze_dependences(chol)

    def test_paper_column_1(self, matrix):
        cols = {tuple(d.entry_strs()) for d in matrix}
        assert ("0", "0", "1", "-1", "0", "0", "+") in cols

    def test_paper_column_2(self, matrix):
        cols = {tuple(d.entry_strs()) for d in matrix}
        assert ("0", "1", "-1", "0", "+", "+", "-") in cols

    def test_paper_column_3_self(self, matrix):
        cols = {tuple(d.entry_strs()) for d in matrix}
        assert ("+", "0", "0", "0", "0", "0", "+") in cols

    def test_paper_column_4_direction(self, matrix):
        # paper: [1,-1,0,1,0,0,1] (value-based); ours widens 1 -> +
        back = matrix.between("S3", "S1")
        assert back, "S3->S1 dependence must exist"
        assert entry_strs(back[0])[1:4] == ["-1", "0", "1"]

    def test_every_statement_pair_covered(self, matrix):
        pairs = {(d.src, d.dst) for d in matrix}
        # the factorization chains S1->S2->S3 and back-edges to S1/S2
        assert ("S1", "S2") in pairs
        assert ("S2", "S3") in pairs
        assert ("S3", "S1") in pairs
        assert ("S3", "S2") in pairs
        assert ("S3", "S3") in pairs


class TestEdgeCases:
    def test_no_dependences_in_independent_loop(self):
        p = parse_program(
            "param N\nreal A(N), B(N)\ndo I = 1..N\n S1: A(I) = B(I) + 1\nenddo"
        )
        m = analyze_dependences(p)
        assert len(m) == 0

    def test_scalar_dependence(self):
        p = parse_program(
            "param N\nreal A(N)\ndo I = 1..N\n S1: acc = acc + A(I)\nenddo"
        )
        m = analyze_dependences(p)
        assert len(m) >= 1
        assert all(d.src == "S1" and d.dst == "S1" for d in m)

    def test_loop_independent_only(self):
        p = parse_program(
            "param N\nreal A(N), B(N)\ndo I = 1..N\n S1: A(I) = 1.0\n S2: B(I) = A(I)\nenddo"
        )
        m = analyze_dependences(p)
        flows = m.between("S1", "S2")
        assert len(flows) == 1
        assert flows[0].level is None

    def test_anti_dependence(self):
        p = parse_program(
            "param N\nreal A(0:N+1)\ndo I = 1..N\n S1: A(I) = A(I+1)\nenddo"
        )
        m = analyze_dependences(p)
        assert any(d.kind == DepKind.ANTI for d in m)

    def test_constant_distance(self):
        p = parse_program(
            "param N\nreal A(0:N)\ndo I = 1..N\n S1: A(I) = A(I-1)\nenddo"
        )
        m = analyze_dependences(p)
        assert len(m) == 1
        assert entry_strs(m.deps[0]) == ["1"]

    def test_rank_mismatch_rejected(self):
        from repro.util.errors import DependenceError

        p = parse_program(
            "param N\nreal A(N,N)\ndo I = 1..N\n S1: A(I,I) = 1.0\nenddo\n"
            "do J = 1..N\n S2: x = A(J)\nenddo"
        )
        with pytest.raises(DependenceError):
            analyze_dependences(p)

    def test_param_assumptions_can_kill_dependences(self):

        p = parse_program(
            "param N\nreal A(0:2*N)\ndo I = 1..N\n S1: A(I) = A(I+N)\nenddo"
        )
        # with N >= 1 unconstrained, anti dep possible (I' = I + N <= N
        # requires I <= 0: infeasible!) — actually never feasible
        m = analyze_dependences(p)
        assert m.between("S1", "S1") == []


class TestTraceCrossCheck:
    """Every ground-truth dependence observed by the interpreter must be
    covered by some symbolic dependence vector (soundness)."""

    @pytest.mark.parametrize("kernel", ["simp_chol", "chol", "aug"])
    def test_symbolic_covers_trace(self, kernel, request):
        program = request.getfixturevalue(kernel)
        _check_coverage(program, {"N": 6})


def _check_coverage(program, params):
    from repro.instance import DynamicInstance, instance_vector
    from repro.interp import execute, ground_truth_dependences

    layout = Layout(program)
    m = analyze_dependences(program)
    _, trace = execute(program, params, trace=True)
    gt = ground_truth_dependences(trace)
    recs = trace.records
    for a, b in gt:
        ra, rb = recs[a], recs[b]
        va = instance_vector(layout, _as_instance(layout, ra))
        vb = instance_vector(layout, _as_instance(layout, rb))
        diff = tuple(y - x for x, y in zip(va, vb))
        covered = any(
            d.src == ra.label
            and d.dst == rb.label
            and all(e.contains(x) for e, x in zip(d.entries, diff))
            for d in m
        )
        assert covered, (
            f"trace dependence {ra.label}{ra.env} -> {rb.label}{rb.env} "
            f"(diff {diff}) not covered by any symbolic dependence"
        )


def _as_instance(layout, rec):
    from repro.instance import DynamicInstance

    order = [c.var for c in layout.surrounding_loop_coords(rec.label)]
    return DynamicInstance(rec.label, tuple(rec.env[v] for v in order))
