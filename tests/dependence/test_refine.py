"""Value-based dynamic refinement (recovering the paper's exact
distances)."""


from repro.dependence import (
    DepKind, analyze_dependences, ground_truth_kinded, observed_hulls,
    refine_dependences,
)
from repro.interp import execute
from repro.ir import parse_program


class TestGroundTruthKinded:
    def test_flow_is_last_writer(self):
        p = parse_program(
            "param N\nreal A(N)\n"
            "do I = 1..N\n S1: A(1) = f(I)\nenddo\n"
            "x = A(1)"
        )
        _, t = execute(p, {"N": 4}, trace=True)
        kinds = ground_truth_kinded(t)
        flows = [(a, b) for a, b, k in kinds if k == DepKind.FLOW]
        # the read (position 4) depends only on the LAST write (position 3)
        assert flows == [(3, 4)]

    def test_output_chains_consecutive(self):
        p = parse_program(
            "param N\nreal A(N)\ndo I = 1..N\n S1: A(1) = f(I)\nenddo"
        )
        _, t = execute(p, {"N": 4}, trace=True)
        outs = [(a, b) for a, b, k in ground_truth_kinded(t) if k == DepKind.OUTPUT]
        assert outs == [(0, 1), (1, 2), (2, 3)]

    def test_anti_read_to_next_write(self):
        p = parse_program(
            "param N\nreal A(N)\n"
            "x = A(1)\n"
            "do I = 1..N\n S2: A(1) = f(I)\nenddo"
        )
        _, t = execute(p, {"N": 3}, trace=True)
        antis = [(a, b) for a, b, k in ground_truth_kinded(t) if k == DepKind.ANTI]
        assert (0, 1) in antis
        assert (0, 2) not in antis  # only the *next* write


class TestRefinement:
    def test_paper_column_simplified_cholesky(self, simp_chol):
        m = refine_dependences(simp_chol, analyze_dependences(simp_chol))
        cols = {(d.kind, tuple(d.entry_strs())) for d in m}
        assert (DepKind.FLOW, ("1", "-1", "1", "0")) in cols

    def test_paper_column_cholesky(self, chol):
        m = refine_dependences(
            chol, analyze_dependences(chol), samples=({"N": 6}, {"N": 8})
        )
        cols = {tuple(d.entry_strs()) for d in m}
        # the paper's fourth §6 column, exactly
        assert ("1", "-1", "0", "1", "0", "0", "1") in cols

    def test_static_entries_never_widened(self, simp_chol):
        static = analyze_dependences(simp_chol)
        refined = refine_dependences(simp_chol, static)
        static_cols = {(d.src, d.dst, d.kind, d.entries) for d in static}
        for d in refined:
            # a refined column must be contained in some static column
            assert any(
                d.src == s and d.dst == t and d.kind == k
                and all(se.contains(e.lo) or e.lo != e.hi or se.contains(e.lo)
                        for se, e in zip(entries, d.entries))
                for s, t, k, entries in static_cols
            )

    def test_sample_variant_entries_keep_static(self, simp_chol):
        """Entries whose observed hull varies with N stay as the sound
        static interval (no sample-size constants leak)."""
        refined = refine_dependences(simp_chol, analyze_dependences(simp_chol))
        for d in refined:
            for e in d.entries:
                if e.is_constant():
                    assert abs(e.constant()) <= 1  # only true distances

    def test_unobserved_dependences_unchanged(self):
        # a dependence that needs N >= 20 to trigger is not observed at
        # N=6/9 and must survive refinement untouched
        p = parse_program(
            "param N\nreal A(0:N+20)\ndo I = 1..N\n S1: A(I+15) = A(I) + 1\nenddo"
        )
        static = analyze_dependences(p)
        refined = refine_dependences(p, static, samples=({"N": 6},))
        assert {d.entries for d in refined} == {d.entries for d in static}

    def test_refined_matrix_still_covers_traces(self, simp_chol):
        """Refinement must not lose coverage of value-based trace deps."""
        from repro.instance import DynamicInstance, Layout, instance_vector

        refined = refine_dependences(simp_chol, analyze_dependences(simp_chol))
        lay = Layout(simp_chol)
        _, t = execute(simp_chol, {"N": 7}, trace=True)
        for a, b, kind in ground_truth_kinded(t):
            ra, rb = t.records[a], t.records[b]

            def vec(rec):
                order = [c.var for c in lay.surrounding_loop_coords(rec.label)]
                return instance_vector(
                    lay, DynamicInstance(rec.label, tuple(rec.env[v] for v in order))
                )

            diff = tuple(y - x for x, y in zip(vec(ra), vec(rb)))
            assert any(
                d.src == ra.label and d.dst == rb.label and d.kind == kind
                and all(e.contains(x) for e, x in zip(d.entries, diff))
                for d in refined
            ), (ra.label, rb.label, kind, diff)


class TestObservedHulls:
    def test_hull_keys(self, simp_chol):
        hulls = observed_hulls(simp_chol, {"N": 5})
        assert ("S1", "S2", DepKind.FLOW) in hulls
        assert ("S2", "S1", DepKind.FLOW) in hulls

    def test_hull_dimension(self, simp_chol, simp_chol_layout):
        hulls = observed_hulls(simp_chol, {"N": 5}, simp_chol_layout)
        for h in hulls.values():
            assert len(h) == simp_chol_layout.dimension
