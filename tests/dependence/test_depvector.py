"""DepVector / DependenceMatrix API tests."""

import pytest

from repro.dependence import DepEntry, DependenceMatrix, DepKind, DepVector
from repro.util.errors import DependenceError


class TestDepVector:
    def test_parse_paper_notation(self):
        d = DepVector.parse("S1", "S2", [0, 1, -1, "+"])
        assert d.entry_strs() == ("0", "1", "-1", "+")
        assert d.src == "S1" and d.dst == "S2"

    def test_parse_with_kind_and_level(self):
        d = DepVector.parse("S1", "S1", [1], kind=DepKind.OUTPUT, level="I")
        assert d.kind == DepKind.OUTPUT and d.level == "I"
        assert d.is_self()

    def test_project(self):
        d = DepVector.parse("S1", "S2", [5, "+", 0, -1])
        assert d.project([3, 0]) == (DepEntry.const(-1), DepEntry.const(5))

    def test_str(self):
        d = DepVector.parse("S1", "S2", [0, "+"], level="I")
        text = str(d)
        assert "S1->S2" in text and "@I" in text


class TestDependenceMatrix:
    @pytest.fixture()
    def matrix(self, simp_chol_layout):
        m = DependenceMatrix(simp_chol_layout)
        m.add(DepVector.parse("S1", "S2", [0, 1, -1, "+"]))
        m.add(DepVector.parse("S2", "S1", ["+", -1, 1, 0], kind=DepKind.ANTI))
        return m

    def test_length_check(self, simp_chol_layout):
        m = DependenceMatrix(simp_chol_layout)
        with pytest.raises(DependenceError):
            m.add(DepVector.parse("S1", "S2", [1, 2]))

    def test_dedup_same_kind(self, matrix):
        n = len(matrix)
        matrix.add(DepVector.parse("S1", "S2", [0, 1, -1, "+"]))
        assert len(matrix) == n

    def test_distinct_kinds_kept(self, matrix):
        n = len(matrix)
        matrix.add(
            DepVector.parse("S1", "S2", [0, 1, -1, "+"], kind=DepKind.OUTPUT)
        )
        assert len(matrix) == n + 1

    def test_between_and_self(self, matrix):
        assert len(matrix.between("S1", "S2")) == 1
        assert matrix.self_deps("S1") == []

    def test_columns(self, matrix):
        cols = matrix.columns()
        assert len(cols) == 2
        assert all(len(c) == 4 for c in cols)

    def test_to_str_grid(self, matrix):
        text = matrix.to_str()
        assert text.count("[") == 4  # one bracket row per dimension

    def test_empty_to_str(self, simp_chol_layout):
        assert "no dependences" in DependenceMatrix(simp_chol_layout).to_str()

    def test_extend(self, simp_chol_layout):
        m = DependenceMatrix(simp_chol_layout)
        m.extend(
            [
                DepVector.parse("S1", "S2", [0, 0, 0, 0]),
                DepVector.parse("S2", "S2", [1, 0, 0, 0]),
            ]
        )
        assert len(m) == 2
