"""Unit tests for interval dependence entries."""

import pytest

from repro.dependence import NEG_INF, POS_INF, DepEntry
from repro.dependence.entry import zip_dot
from repro.util.errors import DependenceError


class TestConstruction:
    def test_const(self):
        e = DepEntry.const(3)
        assert e.is_constant() and e.constant() == 3

    def test_parse_notation(self):
        assert DepEntry.parse("+") == DepEntry(1, POS_INF)
        assert DepEntry.parse("-") == DepEntry(NEG_INF, -1)
        assert DepEntry.parse("*") == DepEntry(NEG_INF, POS_INF)
        assert DepEntry.parse("0+") == DepEntry(0, POS_INF)
        assert DepEntry.parse("-0") == DepEntry(NEG_INF, 0)
        assert DepEntry.parse(5) == DepEntry.const(5)
        assert DepEntry.parse("-3") == DepEntry.const(-3)

    def test_parse_garbage(self):
        with pytest.raises(DependenceError):
            DepEntry.parse("?!")

    def test_empty_interval_rejected(self):
        with pytest.raises(DependenceError):
            DepEntry(3, 2)

    def test_str_roundtrip(self):
        for tok in ("+", "-", "*", "0+", "-0", 7, -2):
            assert str(DepEntry.parse(tok)) == str(tok)


class TestPredicates:
    def test_definitely_positive(self):
        assert DepEntry.plus().definitely_positive()
        assert DepEntry.const(2).definitely_positive()
        assert not DepEntry(0, POS_INF).definitely_positive()

    def test_definitely_negative(self):
        assert DepEntry.minus().definitely_negative()
        assert not DepEntry.star().definitely_negative()

    def test_may_be(self):
        assert DepEntry.star().may_be_positive()
        assert DepEntry.star().may_be_negative()
        assert DepEntry.star().may_be_zero()
        assert not DepEntry.const(0).may_be_positive()
        assert DepEntry(0, POS_INF).may_be_zero()

    def test_contains(self):
        assert DepEntry.plus().contains(100)
        assert not DepEntry.plus().contains(0)
        assert DepEntry(-2, 2).contains(0)


class TestArithmetic:
    def test_add(self):
        assert DepEntry.const(2) + DepEntry.const(3) == DepEntry.const(5)
        assert DepEntry.plus() + DepEntry.const(1) == DepEntry(2, POS_INF)

    def test_neg(self):
        assert -DepEntry.plus() == DepEntry.minus()
        assert -DepEntry(2, 5) == DepEntry(-5, -2)

    def test_scale(self):
        assert DepEntry(1, 3).scale(2) == DepEntry(2, 6)
        assert DepEntry(1, 3).scale(-1) == DepEntry(-3, -1)
        assert DepEntry.plus().scale(-2) == DepEntry(NEG_INF, -2)
        assert DepEntry.star().scale(0) == DepEntry.const(0)

    def test_hull(self):
        assert DepEntry.const(1).hull(DepEntry.const(4)) == DepEntry(1, 4)
        assert DepEntry.plus().hull(DepEntry.const(0)) == DepEntry(0, POS_INF)

    def test_zip_dot(self):
        entries = (DepEntry.const(1), DepEntry.plus(), DepEntry.const(-2))
        # 1*1 + 0*(+) + 1*(-2) = -1
        assert zip_dot((1, 0, 1), entries) == DepEntry.const(-1)
        # 0*1 + 1*(+) + 0 = +
        assert zip_dot((0, 1, 0), entries) == DepEntry.plus()
        # 2*1 + (-1)*(+) = 2 - [1,inf) = (-inf, 1]
        assert zip_dot((2, -1, 0), entries) == DepEntry(NEG_INF, 1)

    def test_zip_dot_mismatch(self):
        with pytest.raises(DependenceError):
            zip_dot((1,), (DepEntry.const(1), DepEntry.const(2)))
