"""Classical GCD/Banerjee tests and their agreement with the exact
oracle (conservativeness property)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dependence.classic import (
    SubscriptPair, banerjee_test, exact_test, gcd_test, screen,
)
from repro.util.errors import DependenceError


def pair(a, a0, b, b0, bounds):
    return SubscriptPair(a, a0, b, b0, bounds)


B10 = {"i": (1, 10), "j": (1, 10)}


class TestGCD:
    def test_classic_independent(self):
        # 2i and 2j+1: even vs odd — no solution
        p = pair({"i": 2}, 0, {"j": 2}, 1, B10)
        assert gcd_test(p) is False

    def test_classic_dependent(self):
        p = pair({"i": 2}, 0, {"j": 2}, 4, B10)
        assert gcd_test(p) is True

    def test_gcd_ignores_bounds(self):
        # solution exists over Z but far outside bounds: GCD says maybe
        p = pair({"i": 1}, 0, {"j": 1}, 1000, B10)
        assert gcd_test(p) is True
        assert banerjee_test(p) is False  # Banerjee catches it

    def test_constant_subscripts(self):
        assert gcd_test(pair({}, 3, {}, 3, {})) is True
        assert gcd_test(pair({}, 3, {}, 4, {})) is False

    def test_mixed_coefficients(self):
        # 6i - 9j == 2: gcd 3 does not divide 2
        p = pair({"i": 6}, 0, {"j": 9}, 2, B10)
        assert gcd_test(p) is False


class TestBanerjee:
    def test_within_range(self):
        p = pair({"i": 1}, 0, {"j": 1}, 5, B10)
        assert banerjee_test(p) is True

    def test_out_of_range(self):
        p = pair({"i": 1}, 0, {"j": 1}, 100, B10)
        assert banerjee_test(p) is False

    def test_negative_coefficients(self):
        # -i == j - 25: i+j == 25: impossible for i,j in 1..10
        p = pair({"i": -1}, 0, {"j": 1}, -25, B10)
        assert banerjee_test(p) is False

    def test_real_but_not_integer_solution(self):
        # 2i == 2j+1 passes Banerjee (real solution) but fails GCD
        p = pair({"i": 2}, 0, {"j": 2}, 1, B10)
        assert banerjee_test(p) is True
        assert gcd_test(p) is False
        assert exact_test(p) is False

    def test_empty_bounds_rejected(self):
        with pytest.raises(DependenceError):
            pair({"i": 1}, 0, {}, 0, {"i": (5, 1)})

    def test_missing_bounds_rejected(self):
        with pytest.raises(DependenceError):
            pair({"i": 1}, 0, {}, 0, {})


class TestScreen:
    def test_any_dimension_independence_suffices(self):
        dep = pair({"i": 1}, 0, {"j": 1}, 0, B10)
        indep = pair({"i": 2}, 0, {"j": 2}, 1, B10)
        assert screen([dep, dep]) is True
        assert screen([dep, indep]) is False


small = st.integers(-4, 4)


@given(
    st.dictionaries(st.sampled_from(["i", "j"]), small, max_size=2),
    small,
    st.dictionaries(st.sampled_from(["i", "j"]), small, max_size=2),
    st.integers(-30, 30),
)
@settings(max_examples=120, deadline=None)
def test_conservativeness_property(a, a0, b, b0):
    """The fast tests may only err toward 'dependent': whenever the
    exact oracle finds a solution, both fast tests must say True."""
    p = pair(a, a0, b, b0, B10)
    if exact_test(p):
        assert gcd_test(p) is True
        assert banerjee_test(p) is True


@given(
    st.dictionaries(st.sampled_from(["i", "j"]), small, min_size=1, max_size=2),
    small,
)
@settings(max_examples=60, deadline=None)
def test_equal_references_always_dependent(a, a0):
    """A reference trivially conflicts with itself."""
    p = pair(a, a0, a, a0, B10)
    assert gcd_test(p) and banerjee_test(p) and exact_test(p)
