"""Shared fixtures: the paper's example programs and their layouts.

Also registers hypothesis settings profiles.  CI exports
``HYPOTHESIS_PROFILE=ci`` to get fully deterministic property tests
(``derandomize=True``) with an explicit generous deadline so shared
runners never flake on timing; the default profile keeps local runs
randomized to maximize long-term case coverage.
"""

from __future__ import annotations

import datetime
import os

import pytest

from repro.instance import Layout
from repro.kernels import (
    augmentation_example, cholesky, lu_factorization, running_example,
    simplified_cholesky, triangular_solve,
)

try:
    from hypothesis import settings
except ImportError:  # hypothesis is an optional dev dependency
    settings = None

if settings is not None:
    settings.register_profile(
        "ci",
        derandomize=True,
        deadline=datetime.timedelta(seconds=5),
        print_blob=True,
    )
    settings.register_profile(
        "default", deadline=datetime.timedelta(seconds=5)
    )
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture(scope="session")
def simp_chol():
    return simplified_cholesky()


@pytest.fixture(scope="session")
def simp_chol_layout(simp_chol):
    return Layout(simp_chol)


@pytest.fixture(scope="session")
def chol():
    return cholesky()


@pytest.fixture(scope="session")
def chol_layout(chol):
    return Layout(chol)


@pytest.fixture(scope="session")
def aug():
    return augmentation_example()


@pytest.fixture(scope="session")
def aug_layout(aug):
    return Layout(aug)


@pytest.fixture(scope="session")
def running():
    return running_example()


@pytest.fixture(scope="session")
def lu():
    return lu_factorization()


@pytest.fixture(scope="session")
def trisolve():
    return triangular_solve()
