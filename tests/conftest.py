"""Shared fixtures: the paper's example programs and their layouts."""

from __future__ import annotations

import pytest

from repro.instance import Layout
from repro.kernels import (
    augmentation_example, cholesky, lu_factorization, running_example,
    simplified_cholesky, triangular_solve,
)


@pytest.fixture(scope="session")
def simp_chol():
    return simplified_cholesky()


@pytest.fixture(scope="session")
def simp_chol_layout(simp_chol):
    return Layout(simp_chol)


@pytest.fixture(scope="session")
def chol():
    return cholesky()


@pytest.fixture(scope="session")
def chol_layout(chol):
    return Layout(chol)


@pytest.fixture(scope="session")
def aug():
    return augmentation_example()


@pytest.fixture(scope="session")
def aug_layout(aug):
    return Layout(aug)


@pytest.fixture(scope="session")
def running():
    return running_example()


@pytest.fixture(scope="session")
def lu():
    return lu_factorization()


@pytest.fixture(scope="session")
def trisolve():
    return triangular_solve()
