"""The oracle wired through legality, api, CLI, fuzz, and tune."""

import pytest

from repro.api import CheckResult, check_op
from repro.cli import EXIT_ILLEGAL_TRANSFORM, main
from repro.fuzz import known_symbolic_case, known_unsound_case, run_case
from repro.kernels import cholesky, syrk
from repro.legality import check
from repro.service.protocol import CheckRequest, TuneRequest
from repro.tune.driver import tune

SYRK = "examples/syrk.loop"
FDTD = "examples/fdtd_1d.loop"


class TestLegalityCheck:
    def test_theorem2_oracle_still_rejects(self):
        report = check(syrk(), "reverse(K)")
        assert not report.legal
        assert report.oracle == "theorem-2"
        assert not report.accepted

    def test_symbolic_oracle_rescues(self):
        report = check(syrk(), "reverse(K)", oracle="symbolic")
        assert not report.legal          # Theorem-2 verdict is preserved
        assert report.symbolic_legal     # ...but the appeal succeeded
        assert report.accepted
        assert report.symbolic.certificate is not None
        assert "SYMBOLIC-LEGAL" in str(report).upper() or "symbolic" in str(report)

    def test_symbolic_oracle_mismatch_stays_rejected(self):
        report = check(cholesky(), "reverse(K)", oracle="symbolic")
        assert not report.accepted
        assert report.symbolic.verdict == "mismatch"

    def test_unknown_oracle_name_rejected(self):
        with pytest.raises(Exception, match="oracle"):
            check(syrk(), "reverse(K)", oracle="astrology")


class TestApi:
    def test_check_op_payload_roundtrip(self):
        res = check_op(syrk(), "reverse(K)", oracle="symbolic")
        assert res.accepted and not res.legal
        back = CheckResult.from_payload(res.to_payload())
        assert back.accepted == res.accepted
        assert back.certificate == res.certificate
        assert back.symbolic_verdict == "symbolic-legal"
        assert "SYMBOLIC-LEGAL" in back.render()

    def test_check_op_default_oracle_unchanged(self):
        res = check_op(syrk(), "reverse(K)")
        assert not res.accepted
        assert res.symbolic_verdict is None


class TestCliExitCodes:
    def test_legal_is_zero(self):
        assert main(["check", SYRK, "permute(J,K)"]) == 0

    def test_rejected_is_one(self):
        assert main(["check", SYRK, "reverse(K)"]) == 1

    def test_symbolic_rescue_is_zero(self):
        assert main(["check", SYRK, "reverse(K)", "--symbolic"]) == 0

    def test_symbolic_mismatch_is_one(self):
        assert main(["check", FDTD, "permute(S,I)", "--symbolic"]) == 1

    def test_analysis_error_is_two(self):
        assert main(["check", SYRK, "reverse(NOPE)"]) == 2

    def test_illegal_transform_is_three(self):
        assert EXIT_ILLEGAL_TRANSFORM == 3
        assert main(["transform", SYRK, "reverse(K)"]) == 3

    def test_explain_symbolic_phase_renders_certificate(self, capsys):
        assert main(
            ["explain", SYRK, "--phase", "symbolic", "--spec", "reverse(K)"]
        ) == 0
        out = capsys.readouterr().out
        assert "SYMBOLIC-LEGAL" in out
        assert "certified at sizes" in out


class TestFuzzIntegration:
    def test_known_symbolic_case_passes(self):
        result = run_case(known_symbolic_case())
        assert result.verdict == "symbolic-legal"
        assert not result.divergent
        assert "certified at sizes" in result.detail

    def test_symbolic_flag_off_keeps_old_verdict(self):
        result = run_case(known_symbolic_case().with_(symbolic=False))
        assert result.verdict in ("illegal-confirmed", "illegal-unconfirmed")

    def test_unsound_injection_is_caught(self):
        result = run_case(known_unsound_case())
        assert result.verdict == "unsound-caught"
        assert not result.divergent

    def test_contradicted_certificate_diverges(self):
        # an unsound (fabricated) certificate on a case where execution
        # disproves it, but with the self-test marker off: the fuzzer
        # must treat the surviving lie as a divergence
        case = known_unsound_case().with_(unsound=False)
        result = run_case(case)
        # without the fabricated certificate the real oracle refuses the
        # recurrence reversal, so the honest path classifies it
        assert result.verdict in ("illegal-confirmed", "illegal-rejected")


class TestTuneIntegration:
    def test_symbolic_tune_measures_rescued_candidate(self):
        r = tune(
            syrk(), {"N": 8, "M": 8}, use_cache=False, symbolic=True,
            depth=1, beam_width=4, top_k=2, repeat=1, backend="source",
        )
        rescued = [row for row in r.rows if row.legality == "symbolic"]
        assert rescued, "a rescued candidate must reach measurement"
        assert all(row.ok for row in rescued)
        assert r.pruned == 0  # every illegal syrk candidate is rescuable

    def test_default_tune_still_prunes(self):
        r = tune(
            syrk(), {"N": 8, "M": 8}, use_cache=False,
            depth=1, beam_width=4, top_k=2, repeat=1, backend="source",
        )
        assert r.pruned == 3
        assert all(row.legality == "theorem-2" for row in r.rows)


class TestServiceProtocol:
    def test_requests_default_symbolic_off(self):
        # wire-compat: requests serialized by older clients keep meaning
        assert CheckRequest(program="p", spec="s").symbolic is False
        assert TuneRequest(program="p").symbolic is False
