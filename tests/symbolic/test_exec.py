"""Bounded symbolic executor: unrolled nests over uninterpreted atoms."""

import pytest

from repro.ir import parse_program
from repro.symbolic import Limits, symbolic_execute
from repro.symbolic.normalize import init_cell
from repro.util.errors import SymbolicBlowupError, SymbolicError

SUM = """
param N
real A(N), S(1)
do I = 1, N
  S1: S(1) = S(1) + A(I)
enddo
"""

SUM_REV = """
param N
real A(N), S(1)
do I = 1, N
  S1: S(1) = S(1) + A(N + 1 - I)
enddo
"""

RECURRENCE = """
param N
real A(0:N)
do I = 1, N
  S1: A(I) = A(I - 1) + f(I)
enddo
"""

RECURRENCE_REV = """
param N
real A(0:N)
do I = 1, N
  S1: A(N + 1 - I) = A(N - I) + f(N + 1 - I)
enddo
"""


def run(src, n=4, limits=None):
    return symbolic_execute(parse_program(src, "t"), {"N": n}, limits=limits)


class TestExecution:
    def test_reduction_store_shape(self):
        state = run(SUM, n=3)
        assert len(state) == 1
        v = state.load_array("S", (1,))
        # S₀(1) + A₀(1) + A₀(2) + A₀(3), all unit coefficients
        assert v[0] == "sum"
        terms = {t for t, c in v[2] if c == 1.0}
        assert init_cell("S", (1,)) in terms
        assert {init_cell("A", (i,)) for i in (1, 2, 3)} <= terms

    def test_reversed_reduction_is_identical(self):
        assert run(SUM, 4).diff(run(SUM_REV, 4)) is None

    def test_reversed_recurrence_differs(self):
        diff = run(RECURRENCE, 4).diff(run(RECURRENCE_REV, 4))
        assert diff is not None
        assert diff.loc[0] == "arr"
        assert diff.describe()

    def test_equivalence_is_per_size(self):
        # at every size, for ALL initial contents — so N=2 and N=3 both hold
        for n in (2, 3, 5):
            assert run(SUM, n).diff(run(SUM_REV, n)) is None

    def test_unbound_parameter_raises(self):
        with pytest.raises(SymbolicError, match="unbound parameters"):
            symbolic_execute(parse_program(SUM, "t"), {})

    def test_guards_respected(self):
        src = """
        param N
        real A(N)
        do I = 1, N
          S1: A(I) = f(I)
        enddo
        """
        state = run(src, n=2)
        assert len(state) == 2


class TestLimits:
    def test_instance_budget(self):
        with pytest.raises(SymbolicBlowupError, match="instance budget"):
            run(SUM, n=4, limits=Limits(max_instances=2))

    def test_store_budget(self):
        with pytest.raises(SymbolicBlowupError, match="store exceeds"):
            run(SUM, n=4, limits=Limits(max_nodes=2))

    def test_value_budget(self):
        with pytest.raises(SymbolicBlowupError, match="nodes"):
            run(SUM, n=4, limits=Limits(max_value_nodes=2))

    def test_instances_counted(self):
        lim = Limits()
        run(SUM, n=4, limits=lim)
        assert lim.instances == 4
