"""The fractal loop: verdicts, certificates, and the unsound self-test."""

import pytest

from repro.ir import parse_program
from repro.kernels import cholesky, fdtd_1d, syrk, trsv
from repro.symbolic import (
    Certificate, Limits, MIN_SIZES, SIZE_FLOOR, prove_equivalent,
    prove_schedule, verify_certificate,
)
from repro.symbolic.fractal import UNSOUND_NOTE
from repro.util.errors import SymbolicError


class TestProveSchedule:
    def test_syrk_reverse_k_certified(self):
        out = prove_schedule(syrk(), "reverse(K)")
        assert out.verdict == "symbolic-legal"
        cert = out.certificate
        assert cert is not None
        assert len(cert.sizes) >= MIN_SIZES
        assert min(cert.sizes) >= SIZE_FLOOR
        assert not cert.unsound_injection
        assert "certified at sizes" in cert.summary()

    def test_syrk_blocked_reverse_certified(self):
        out = prove_schedule(syrk(), "tile(K,2); reverse(KT)")
        assert out.legal

    def test_trsv_reverse_j_certified(self):
        out = prove_schedule(trsv(), "reverse(J)")
        assert out.legal

    def test_cholesky_reverse_k_mismatch(self):
        out = prove_schedule(cholesky(), "reverse(K)")
        assert out.verdict == "mismatch"
        assert out.certificate is None
        assert out.diff  # a concrete diverging location is named

    def test_fdtd_time_space_interchange_mismatch(self):
        out = prove_schedule(fdtd_1d(), "permute(S,I)")
        assert out.verdict == "mismatch"

    def test_unparseable_spec_is_unknown(self):
        out = prove_schedule(syrk(), "reverse(NOPE)")
        assert out.verdict == "unknown"
        assert not out.legal


class TestProveEquivalent:
    def test_size_floor_enforced(self):
        p = syrk()
        with pytest.raises(SymbolicError, match="floor"):
            prove_equivalent(p, p, sizes=(1,))

    def test_blowup_descends_then_reports_unknown(self):
        # budget so small every size blows up: honest unknown, no guess
        p = parse_program(
            "param N\nreal A(N), S(1)\n"
            "do I = 1, N\n  S1: S(1) = S(1) + A(I)\nenddo",
            "t",
        )
        out = prove_equivalent(p, p, limits=Limits(max_instances=1))
        assert out.verdict == "unknown"
        assert "simple enough" in out.reason

    def test_identity_certifies_with_rules(self):
        p = syrk()
        out = prove_equivalent(p, p)
        assert out.legal
        assert out.certificate.attempts >= 2 * MIN_SIZES


class TestCertificates:
    def test_payload_roundtrip(self):
        out = prove_schedule(syrk(), "reverse(K)")
        cert = out.certificate
        assert Certificate.from_payload(cert.to_payload()) == cert

    def test_genuine_certificate_verifies(self):
        out = prove_schedule(syrk(), "reverse(K)")
        assert verify_certificate(syrk(), out.certificate)

    def test_fabricated_certificate_fails_verification(self):
        out = prove_schedule(syrk(), "reverse(K)", unsound=True)
        assert out.legal  # the lie *looks* legal...
        cert = out.certificate
        assert cert.unsound_injection
        assert cert.note == UNSOUND_NOTE
        assert not verify_certificate(syrk(), cert)  # ...but cannot be checked

    def test_wrong_spec_certificate_fails_verification(self):
        out = prove_schedule(syrk(), "reverse(K)")
        lying = Certificate.from_payload(
            {**out.certificate.to_payload(), "spec": "reverse(K)"}
        )
        # re-prove under a spec that mismatches: cholesky's reversal
        assert not verify_certificate(cholesky(), lying)
