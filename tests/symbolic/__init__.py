"""Tests for the fractal symbolic legality oracle (system S21)."""
