"""AC-normal form: the ring axioms the oracle is allowed to assume."""

import pytest

from repro.symbolic import RULES, render, rule_log, size
from repro.symbolic.normalize import (
    init_cell, num, s_add, s_call, s_div, s_mod, s_mul, s_neg, s_sub,
)

A = init_cell("A", (1,))
B = init_cell("B", (2,))
C = init_cell("C", (3,))


class TestRingAxioms:
    def test_add_commutes(self):
        assert s_add(A, B) == s_add(B, A)

    def test_add_associates(self):
        assert s_add(s_add(A, B), C) == s_add(A, s_add(B, C))

    def test_mul_commutes(self):
        assert s_mul(A, B) == s_mul(B, A)

    def test_mul_associates(self):
        assert s_mul(s_mul(A, B), C) == s_mul(A, s_mul(B, C))

    def test_mul_distributes_over_add(self):
        left = s_mul(s_add(A, B), C)
        right = s_add(s_mul(A, C), s_mul(B, C))
        assert left == right

    def test_reversed_reduction_normalizes_equal(self):
        # the oracle's whole reason to exist: a + b + c == c + b + a
        fwd = s_add(s_add(A, B), C)
        rev = s_add(s_add(C, B), A)
        assert fwd == rev


class TestIdentitiesAndFolding:
    def test_constants_fold(self):
        assert s_add(num(2), num(3)) == num(5)
        assert s_mul(num(2), num(3)) == num(6)

    def test_zero_is_additive_identity(self):
        assert s_add(A, num(0)) == A

    def test_one_is_multiplicative_identity(self):
        assert s_mul(A, num(1)) == A

    def test_zero_annihilates(self):
        assert s_mul(A, num(0)) == num(0)

    def test_sub_cancels(self):
        assert s_sub(A, A) == num(0)

    def test_combine_like_terms(self):
        assert s_add(A, A) == s_mul(num(2), A)

    def test_combine_exponents(self):
        assert s_mul(A, A) == ("prod", ((A, 2),))

    def test_neg_is_scale_by_minus_one(self):
        assert s_add(A, s_neg(A)) == num(0)


class TestOpaqueOperators:
    def test_div_by_const_becomes_scale(self):
        assert s_div(A, num(2)) == s_mul(num(0.5), A)

    def test_div_by_symbol_stays_opaque(self):
        v = s_div(A, B)
        assert v[0] == "div"
        # and is NOT reassociated: (a/b)/c != a/(b/c) structurally
        assert s_div(v, C) != s_div(A, s_div(B, C))

    def test_div_by_constant_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            s_div(A, num(0))

    def test_mod_folds_numbers_only(self):
        assert s_mod(num(7), num(3)) == num(1)
        assert s_mod(A, num(3))[0] == "mod"

    def test_call_folds_all_numeric(self):
        assert s_call("sqrt", (num(4),)) == num(2)

    def test_call_uninterpreted_on_symbols(self):
        v = s_call("f", (A,))
        assert v == ("call", "f", (A,))
        assert v != s_call("g", (A,))


class TestAccounting:
    def test_size_counts_nodes(self):
        assert size(A) == 1
        assert size(s_add(A, B)) == 3  # sum node + two atoms

    def test_render_truncates(self):
        v = A
        for i in range(50):
            v = s_add(v, init_cell("A", (i + 10,)))
        assert len(render(v, limit=40)) <= 40

    def test_rule_log_records_fired_rules(self):
        with rule_log() as log:
            s_add(s_add(A, B), C)
            s_mul(s_add(A, B), C)
        assert log.rules
        assert set(log.rules) <= set(RULES)
        assert "distribute-mul-over-add" in log.rules

    def test_rule_log_is_scoped(self):
        with rule_log() as outer:
            with rule_log() as inner:
                s_add(num(1), num(2))
            assert "fold-const-add" in inner.rules
        assert "fold-const-add" not in outer.rules
