"""Unit tests for Hermite/Smith normal forms and lattice membership."""

import pytest

from repro.linalg import IntMatrix, hnf_column, hnf_row, in_lattice, smith_normal_form


class TestHNF:
    def test_identity_fixed_point(self):
        h, u = hnf_column(IntMatrix.identity(3))
        assert h == IntMatrix.identity(3)
        assert u.is_unimodular()

    def test_product_invariant(self):
        a = IntMatrix([[4, 7, 2], [0, 3, 9]])
        h, u = hnf_column(a)
        assert (a @ u) == h
        assert u.is_unimodular()

    def test_lower_triangular_shape(self):
        a = IntMatrix([[3, 1, 2], [6, 5, 1], [0, 2, 2]])
        h, u = hnf_column(a)
        assert (a @ u) == h
        # column HNF: zero above-right of pivots
        assert h[0, 1] == 0 and h[0, 2] == 0
        assert h[1, 2] == 0

    def test_positive_pivots(self):
        a = IntMatrix([[-4, 0], [0, -6]])
        h, _ = hnf_column(a)
        assert h[0, 0] > 0 and h[1, 1] > 0

    def test_rank_deficient(self):
        a = IntMatrix([[1, 2, 3]])
        h, u = hnf_column(a)
        assert (a @ u) == h
        assert h[0, 0] == 1 and h[0, 1] == 0 and h[0, 2] == 0

    def test_row_form(self):
        a = IntMatrix([[2, 4], [6, 8]])
        h, u = hnf_row(a)
        assert (u @ a) == h
        assert u.is_unimodular()
        assert h[1, 0] == 0  # upper triangular

    def test_exactness_large_values(self):
        a = IntMatrix([[10**12, 10**12 + 1], [3, 7]])
        h, u = hnf_column(a)
        assert (a @ u) == h


class TestSNF:
    def test_diagonal_divisibility(self):
        a = IntMatrix([[2, 4, 4], [-6, 6, 12], [10, 4, 16]])
        s, u, v = smith_normal_form(a)
        assert (u @ a @ v) == s
        d = [s[i, i] for i in range(3)]
        assert all(d[i] >= 0 for i in range(3))
        for i in range(2):
            if d[i + 1] != 0:
                assert d[i + 1] % max(d[i], 1) == 0

    def test_unimodular_factors(self):
        a = IntMatrix([[1, 2], [3, 4]])
        s, u, v = smith_normal_form(a)
        assert u.is_unimodular() and v.is_unimodular()
        assert (u @ a @ v) == s

    def test_zero_matrix(self):
        s, u, v = smith_normal_form(IntMatrix.zeros(2, 3))
        assert s.is_zero()

    def test_rectangular(self):
        a = IntMatrix([[2, 0, 0], [0, 3, 0]])
        s, u, v = smith_normal_form(a)
        assert (u @ a @ v) == s
        assert s[0, 0] == 1 and s[1, 1] == 6  # invariant factors of diag(2,3)

    def test_det_preserved_up_to_sign(self):
        a = IntMatrix([[4, 1], [2, 3]])
        s, _, _ = smith_normal_form(a)
        assert abs(s[0, 0] * s[1, 1]) == abs(a.det())


class TestLattice:
    def test_membership_diag(self):
        basis = IntMatrix([[2, 0], [0, 3]])
        assert in_lattice(basis, (4, 9))
        assert in_lattice(basis, (0, 0))
        assert not in_lattice(basis, (1, 3))
        assert not in_lattice(basis, (2, 2))

    def test_membership_skewed(self):
        basis = IntMatrix([[1, 1], [0, 2]])
        # lattice = {(a+b, 2b)} -> second coord even
        assert in_lattice(basis, (3, 2))
        assert not in_lattice(basis, (3, 1))

    def test_full_lattice(self):
        assert in_lattice(IntMatrix.identity(3), (7, -2, 5))

    def test_wrong_dimension(self):
        from repro.util.errors import LinalgError

        with pytest.raises(LinalgError):
            in_lattice(IntMatrix.identity(2), (1, 2, 3))
