"""Unit tests for exact integer matrices."""

import pytest
from fractions import Fraction

from repro.linalg import IntMatrix, FracMatrix
from repro.util.errors import LinalgError


class TestConstruction:
    def test_shape(self):
        m = IntMatrix([[1, 2, 3], [4, 5, 6]])
        assert m.shape == (2, 3)
        assert m.nrows == 2 and m.ncols == 3

    def test_empty(self):
        m = IntMatrix([])
        assert m.shape == (0, 0)

    def test_ragged_rejected(self):
        with pytest.raises(LinalgError):
            IntMatrix([[1, 2], [3]])

    def test_non_integral_rejected(self):
        with pytest.raises(LinalgError):
            IntMatrix([[1.5]])

    def test_integral_float_accepted(self):
        assert IntMatrix([[2.0]])[0, 0] == 2

    def test_fraction_entries(self):
        assert IntMatrix([[Fraction(4, 2)]])[0, 0] == 2
        with pytest.raises(LinalgError):
            IntMatrix([[Fraction(1, 2)]])

    def test_identity(self):
        i3 = IntMatrix.identity(3)
        assert i3[0, 0] == 1 and i3[0, 1] == 0
        assert i3.is_unimodular()

    def test_diag(self):
        d = IntMatrix.diag([2, -3])
        assert d[0, 0] == 2 and d[1, 1] == -3 and d[0, 1] == 0

    def test_permutation_matrix(self):
        p = IntMatrix.permutation([2, 0, 1])
        assert p.matvec((10, 20, 30)) == (30, 10, 20)
        assert p.is_permutation()
        assert p.to_permutation() == [2, 0, 1]

    def test_permutation_invalid(self):
        with pytest.raises(LinalgError):
            IntMatrix.permutation([0, 0, 1])

    def test_column_and_row(self):
        assert IntMatrix.column([1, 2]).shape == (2, 1)
        assert IntMatrix.row([1, 2]).shape == (1, 2)


class TestArithmetic:
    def test_add_sub(self):
        a = IntMatrix([[1, 2], [3, 4]])
        b = IntMatrix([[5, 6], [7, 8]])
        assert (a + b)[1, 1] == 12
        assert (b - a)[0, 0] == 4

    def test_neg(self):
        assert (-IntMatrix([[1, -2]]))[0, 1] == 2

    def test_scalar_mul(self):
        assert (3 * IntMatrix([[2]]))[0, 0] == 6

    def test_matmul(self):
        a = IntMatrix([[1, 2], [3, 4]])
        assert (a @ IntMatrix.identity(2)) == a
        sq = a @ a
        assert sq == IntMatrix([[7, 10], [15, 22]])

    def test_matmul_shape_error(self):
        with pytest.raises(LinalgError):
            IntMatrix([[1, 2]]) @ IntMatrix([[1, 2]])

    def test_matvec(self):
        m = IntMatrix([[1, 0, -1], [0, 2, 0]])
        assert m.matvec((5, 6, 7)) == (-2, 12)

    def test_matvec_length_error(self):
        with pytest.raises(LinalgError):
            IntMatrix([[1, 2]]).matvec((1,))


class TestStructure:
    def test_transpose(self):
        m = IntMatrix([[1, 2, 3], [4, 5, 6]])
        assert m.T.shape == (3, 2)
        assert m.T[2, 1] == 6
        assert m.T.T == m

    def test_stacking(self):
        a = IntMatrix([[1, 2]])
        b = IntMatrix([[3, 4]])
        assert a.vstack(b).shape == (2, 2)
        assert a.hstack(b).shape == (1, 4)

    def test_with_row(self):
        m = IntMatrix([[1, 2]]).with_row([3, 4])
        assert m[1] == (3, 4)

    def test_select_delete(self):
        m = IntMatrix([[1, 2, 3], [4, 5, 6], [7, 8, 9]])
        assert m.select_rows([2, 0])[0] == (7, 8, 9)
        assert m.select_cols([1])[0] == (2,)
        assert m.delete_row(1).nrows == 2
        assert m.delete_col(0)[0] == (2, 3)

    def test_hashable(self):
        assert len({IntMatrix([[1]]), IntMatrix([[1]]), IntMatrix([[2]])}) == 2

    def test_getitem_slices(self):
        m = IntMatrix([[1, 2, 3], [4, 5, 6], [7, 8, 9]])
        assert m[1:, 1:] == IntMatrix([[5, 6], [8, 9]])
        assert m[0] == (1, 2, 3)


class TestNumerics:
    def test_det_small(self):
        assert IntMatrix([[2, 0], [0, 3]]).det() == 6
        assert IntMatrix([[1, 2], [2, 4]]).det() == 0
        assert IntMatrix([]).det() == 1

    def test_det_sign_of_swap(self):
        assert IntMatrix([[0, 1], [1, 0]]).det() == -1

    def test_det_bareiss_exact_large_entries(self):
        m = IntMatrix([[10**9, 1], [1, 10**9]])
        assert m.det() == 10**18 - 1

    def test_det_non_square(self):
        with pytest.raises(LinalgError):
            IntMatrix([[1, 2]]).det()

    def test_rank(self):
        assert IntMatrix([[1, 2], [2, 4]]).rank() == 1
        assert IntMatrix.identity(4).rank() == 4
        assert IntMatrix.zeros(3, 3).rank() == 0

    def test_inverse_int(self):
        m = IntMatrix([[1, 1], [0, 1]])
        inv = m.inverse_int()
        assert m @ inv == IntMatrix.identity(2)

    def test_inverse_not_unimodular(self):
        with pytest.raises(LinalgError):
            IntMatrix([[2, 0], [0, 1]]).inverse_int()

    def test_inverse_frac(self):
        inv = IntMatrix([[2, 0], [0, 4]]).inverse_frac()
        assert inv[0, 0] == Fraction(1, 2)
        assert inv[1, 1] == Fraction(1, 4)

    def test_inverse_singular(self):
        with pytest.raises(LinalgError):
            IntMatrix([[1, 1], [1, 1]]).inverse_frac()

    def test_solve_frac(self):
        m = IntMatrix([[2, 1], [1, 1]])
        x = m.solve_frac((3, 2))
        assert x == (Fraction(1), Fraction(1))

    def test_nullspace(self):
        ns = IntMatrix([[1, -1, 0]]).nullspace_int()
        assert len(ns) == 2
        for v in ns:
            assert v[0] - v[1] == 0 or sum(abs(x) for x in v) > 0
            assert IntMatrix([[1, -1, 0]]).matvec(v) == (0,)

    def test_nullspace_full_rank(self):
        assert IntMatrix.identity(3).nullspace_int() == []

    def test_row_space_basis(self):
        basis = IntMatrix([[2, 4], [1, 2]]).row_space_basis()
        assert len(basis) == 1
        assert basis[0] in ((1, 2), (-1, -2))

    def test_is_unimodular(self):
        assert IntMatrix([[1, 5], [0, 1]]).is_unimodular()
        assert not IntMatrix([[2, 0], [0, 1]]).is_unimodular()

    def test_gcd_of_entries(self):
        assert IntMatrix([[4, 6], [8, 0]]).gcd_of_entries() == 2


class TestFracMatrix:
    def test_to_int_roundtrip(self):
        f = FracMatrix([[Fraction(2), Fraction(3)]])
        assert f.to_int() == IntMatrix([[2, 3]])

    def test_to_int_rejects_fractions(self):
        with pytest.raises(LinalgError):
            FracMatrix([[Fraction(1, 2)]]).to_int()

    def test_matvec(self):
        f = FracMatrix([[Fraction(1, 2), 0]])
        assert f.matvec((4, 1)) == (Fraction(2),)
