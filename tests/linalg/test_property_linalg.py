"""Property-based tests (hypothesis) for the exact linear algebra."""

from hypothesis import given, settings, strategies as st

from repro.linalg import (
    IntMatrix, complete_to_unimodular, hnf_column, in_lattice, random_unimodular,
    smith_normal_form,
)

small_int = st.integers(min_value=-9, max_value=9)


def matrices(max_n=4):
    return st.integers(1, max_n).flatmap(
        lambda n: st.integers(1, max_n).flatmap(
            lambda m: st.lists(
                st.lists(small_int, min_size=m, max_size=m), min_size=n, max_size=n
            ).map(IntMatrix)
        )
    )


def square_matrices(max_n=4):
    return st.integers(1, max_n).flatmap(
        lambda n: st.lists(
            st.lists(small_int, min_size=n, max_size=n), min_size=n, max_size=n
        ).map(IntMatrix)
    )


@given(matrices())
@settings(max_examples=60, deadline=None)
def test_hnf_invariant(a):
    h, u = hnf_column(a)
    assert (a @ u) == h
    assert u.is_unimodular()


@given(matrices())
@settings(max_examples=60, deadline=None)
def test_hnf_preserves_rank(a):
    h, _ = hnf_column(a)
    assert h.rank() == a.rank()


@given(matrices(3))
@settings(max_examples=40, deadline=None)
def test_snf_invariant(a):
    s, u, v = smith_normal_form(a)
    assert (u @ a @ v) == s
    assert u.is_unimodular() and v.is_unimodular()
    n = min(s.nrows, s.ncols)
    diag = [s[i, i] for i in range(n)]
    for i in range(n):
        for j in range(s.ncols):
            if j != i and i < s.nrows:
                assert s[i, j] == 0 or j >= n
    for i in range(n - 1):
        if diag[i + 1] != 0:
            assert diag[i] == 0 or diag[i + 1] % diag[i] == 0


@given(square_matrices(4))
@settings(max_examples=60, deadline=None)
def test_det_matches_rank_deficiency(a):
    assert (a.det() == 0) == (a.rank() < a.nrows)


@given(square_matrices(3), square_matrices(3))
@settings(max_examples=40, deadline=None)
def test_det_multiplicative(a, b):
    if a.shape != b.shape:
        return
    assert (a @ b).det() == a.det() * b.det()


@given(matrices(4))
@settings(max_examples=50, deadline=None)
def test_nullspace_vectors_annihilate(a):
    for v in a.nullspace_int():
        assert a.matvec(v) == tuple([0] * a.nrows)


@given(st.integers(1, 5), st.integers(0, 1000))
@settings(max_examples=40, deadline=None)
def test_random_unimodular_rows_completable(n, seed):
    m = random_unimodular(n, seed=seed)
    # any prefix of a unimodular matrix is completable back to unimodular
    for k in range(1, n + 1):
        prefix = m.select_rows(range(k))
        c = complete_to_unimodular(prefix)
        assert c.is_unimodular()
        assert c.select_rows(range(k)) == prefix


@given(square_matrices(3), st.lists(small_int, min_size=3, max_size=3))
@settings(max_examples=60, deadline=None)
def test_lattice_membership_of_image(a, x):
    if a.ncols != 3:
        return
    v = a.matvec(tuple(x))
    assert in_lattice(a, v)
