"""Unit tests for unimodular completion and lexicographic helpers."""

import pytest

from repro.linalg import (
    IntMatrix, complete_to_unimodular, extend_to_full_rank, first_nonzero_index,
    is_lex_nonnegative, is_lex_positive, lex_compare, random_unimodular,
)
from repro.util.errors import LinalgError


class TestCompletion:
    def test_single_unit_row(self):
        m = complete_to_unimodular(IntMatrix([[0, 0, 1]]))
        assert m.shape == (3, 3)
        assert m[0] == (0, 0, 1)
        assert m.is_unimodular()

    def test_skewed_row(self):
        m = complete_to_unimodular(IntMatrix([[1, -1]]))
        assert m[0] == (1, -1)
        assert m.is_unimodular()

    def test_two_rows(self):
        rows = IntMatrix([[1, 0, 1], [0, 1, 0]])
        m = complete_to_unimodular(rows)
        assert m.select_rows([0, 1]) == rows
        assert m.is_unimodular()

    def test_already_square(self):
        i = IntMatrix.identity(4)
        assert complete_to_unimodular(i) == i

    def test_dependent_rows_rejected(self):
        with pytest.raises(LinalgError):
            complete_to_unimodular(IntMatrix([[1, 2], [2, 4]]))

    def test_non_primitive_rejected(self):
        # the row (2, 0) cannot appear in any unimodular matrix
        with pytest.raises(LinalgError):
            complete_to_unimodular(IntMatrix([[2, 0]]))

    def test_extend_to_full_rank(self):
        m = extend_to_full_rank(IntMatrix([[2, 0, 0]]))
        assert m.shape == (3, 3)
        assert m.rank() == 3
        assert m[0] == (2, 0, 0)

    def test_extend_dependent_rejected(self):
        with pytest.raises(LinalgError):
            extend_to_full_rank(IntMatrix([[1, 0], [2, 0]]))


class TestLexOrder:
    def test_first_nonzero(self):
        assert first_nonzero_index((0, 0, 3)) == 2
        assert first_nonzero_index((0, 0)) is None

    def test_lex_positive(self):
        assert is_lex_positive((0, 1, -5))
        assert not is_lex_positive((0, -1, 5))
        assert not is_lex_positive((0, 0))

    def test_lex_nonnegative(self):
        assert is_lex_nonnegative((0, 0))
        assert is_lex_nonnegative((1, -1))
        assert not is_lex_nonnegative((-1, 2))

    def test_lex_compare(self):
        assert lex_compare((1, 2), (1, 3)) == -1
        assert lex_compare((2, 0), (1, 9)) == 1
        assert lex_compare((1, 2), (1, 2)) == 0

    def test_lex_compare_length_mismatch(self):
        with pytest.raises(LinalgError):
            lex_compare((1,), (1, 2))


class TestRandomUnimodular:
    @pytest.mark.parametrize("n", [1, 2, 3, 5])
    def test_always_unimodular(self, n):
        for seed in range(5):
            assert random_unimodular(n, seed=seed).is_unimodular()

    def test_deterministic_in_seed(self):
        assert random_unimodular(4, seed=7) == random_unimodular(4, seed=7)
        assert random_unimodular(4, seed=7) != random_unimodular(4, seed=8)
