"""Classical perfect-nest baseline (system S11)."""

import pytest

from repro.linalg import IntMatrix
from repro.perfect import (
    PerfectDeps, complete_perfect, is_legal_perfect, outermost_parallel_row,
    parallel_directions,
)
from repro.util.errors import CompletionError


class TestLegality:
    def test_interchange_of_uniform_dep(self):
        deps = PerfectDeps.parse(2, [[1, 1]])
        swap = IntMatrix([[0, 1], [1, 0]])
        assert is_legal_perfect(swap, deps)

    def test_interchange_illegal_for_antidiagonal(self):
        deps = PerfectDeps.parse(2, [[1, -1]])
        swap = IntMatrix([[0, 1], [1, 0]])
        assert not is_legal_perfect(swap, deps)

    def test_skew_makes_interchange_legal(self):
        deps = PerfectDeps.parse(2, [[1, -1]])
        skew_then_swap = IntMatrix([[0, 1], [1, 0]]) @ IntMatrix([[1, 0], [1, 1]])
        assert is_legal_perfect(skew_then_swap, deps)

    def test_direction_entries(self):
        deps = PerfectDeps.parse(2, [["+", "-"]])
        assert is_legal_perfect(IntMatrix.identity(2), deps)
        assert not is_legal_perfect(IntMatrix([[0, 1], [1, 0]]), deps)

    def test_zero_not_allowed(self):
        # T.d = 0 is not "legal" in the perfect framework
        deps = PerfectDeps.parse(2, [[0, 1]])
        proj = IntMatrix([[1, 0], [0, 0]])
        assert not is_legal_perfect(proj, deps)

    def test_shape_mismatch(self):
        from repro.util.errors import LegalityError

        with pytest.raises(LegalityError):
            is_legal_perfect(IntMatrix.identity(3), PerfectDeps.parse(2, []))


class TestCompletion:
    def test_empty_partial(self):
        deps = PerfectDeps.parse(2, [[1, 0], [0, 1]])
        m = complete_perfect(IntMatrix.zeros(0, 2), deps)
        assert m.shape == (2, 2)
        assert is_legal_perfect(m, deps)

    def test_wavefront_partial(self):
        # classic: d = (1,0),(0,1); partial row (1,1) satisfies both
        deps = PerfectDeps.parse(2, [[1, 0], [0, 1]])
        m = complete_perfect(IntMatrix([[1, 1]]), deps)
        assert m[0] == (1, 1)
        assert m.rank() == 2
        assert is_legal_perfect(m, deps)

    def test_partial_violation_rejected(self):
        deps = PerfectDeps.parse(2, [[1, 0]])
        with pytest.raises(CompletionError):
            complete_perfect(IntMatrix([[-1, 0]]), deps)

    def test_pending_dep_carried(self):
        # partial row orthogonal to the dependence: next row must carry it
        deps = PerfectDeps.parse(2, [[0, 1]])
        m = complete_perfect(IntMatrix([[1, 0]]), deps)
        assert is_legal_perfect(m, deps)

    def test_directions(self):
        deps = PerfectDeps.parse(3, [["+", 0, 0], [0, "+", "-"]])
        m = complete_perfect(IntMatrix.zeros(0, 3), deps)
        assert is_legal_perfect(m, deps)


class TestParallelism:
    def test_nullspace_direction(self):
        # single dependence (1, 1): (1, -1) is a parallel direction
        deps = PerfectDeps.parse(2, [[1, 1]])
        dirs = parallel_directions(deps)
        assert dirs
        for d in dirs:
            assert d[0] * 1 + d[1] * 1 == 0

    def test_direction_entries_force_zero(self):
        deps = PerfectDeps.parse(2, [["+", 0]])
        dirs = parallel_directions(deps)
        assert all(d[0] == 0 for d in dirs)
        assert any(d[1] != 0 for d in dirs)

    def test_no_parallelism(self):
        deps = PerfectDeps.parse(2, [[1, 0], [0, 1], [1, 1], [1, -1]])
        # deps span the space: nullspace empty
        assert parallel_directions(deps) == []
        assert outermost_parallel_row(deps) is None

    def test_fully_parallel(self):
        deps = PerfectDeps.parse(2, [])
        assert len(parallel_directions(deps)) == 2


class TestAblationA2:
    """The imperfect framework degenerates to the classical one on
    perfect nests: same legality verdicts."""

    @pytest.mark.parametrize(
        "cols,matrix_rows,expect",
        [
            ([[1, 1]], [[0, 1], [1, 0]], True),
            ([[1, -1]], [[0, 1], [1, 0]], False),
            ([[1, 0]], [[1, 0], [0, -1]], True),
            ([[0, 1]], [[1, 0], [0, -1]], False),
        ],
    )
    def test_agreement_on_perfect_nests(self, cols, matrix_rows, expect):
        from repro.dependence import DependenceMatrix, DepVector
        from repro.instance import Layout
        from repro.ir import parse_program
        from repro.legality import check_legality

        # a 2-deep perfect nest; dependences injected to match `cols`
        p = parse_program(
            "param N\nreal A(-9:N+9,-9:N+9)\n"
            "do I = 1..N\n do J = 1..N\n  S1: A(I,J) = 1.0\n enddo\nenddo"
        )
        lay = Layout(p)
        dm = DependenceMatrix(lay)
        for c in cols:
            dm.add(DepVector.parse("S1", "S1", c))
        m = IntMatrix(matrix_rows)
        classical = is_legal_perfect(m, PerfectDeps.parse(2, cols))
        ours = check_legality(lay, m, dm)
        # classical disallows unsatisfied (zero) deps; ours marks them
        # unsatisfied-but-legal. For these cases no zero arises.
        assert ours.legal == classical == expect
