"""Async job queue: lifecycle, failures, cancellation, draining."""

from __future__ import annotations

import threading
import time

import pytest

from repro.service.jobs import JobQueue
from repro.util.errors import ServiceError


def test_submit_poll_result_roundtrip():
    q = JobQueue(lambda op, args: {"op": op, **args}, workers=1)
    try:
        jid = q.submit("analyze", {"x": 1})
        assert jid.startswith("job-")
        assert q.wait(jid, 5)
        assert q.poll(jid)["status"] == "done"
        assert q.result(jid) == {"op": "analyze", "x": 1}
    finally:
        q.stop()


def test_failed_job_relays_error_kind():
    def handler(op, args):
        raise ValueError("kaput")

    q = JobQueue(handler, workers=1)
    try:
        jid = q.submit("analyze", {})
        assert q.wait(jid, 5)
        assert q.poll(jid)["status"] == "error"
        with pytest.raises(ServiceError, match="kaput") as exc_info:
            q.result(jid)
        assert exc_info.value.kind == "ValueError"
    finally:
        q.stop()


def test_result_while_pending_raises_job_pending():
    gate = threading.Event()
    q = JobQueue(lambda op, args: gate.wait(5) and {}, workers=1)
    try:
        jid = q.submit("analyze", {})
        with pytest.raises(ServiceError) as exc_info:
            q.result(jid)
        assert exc_info.value.kind == "JobPending"
    finally:
        gate.set()
        q.stop()


def test_cancel_pending_job_never_runs():
    gate = threading.Event()
    ran = []

    def handler(op, args):
        ran.append(args.get("n"))
        gate.wait(5)
        return {}

    q = JobQueue(handler, workers=1)
    try:
        blocker = q.submit("analyze", {"n": 0})  # occupies the only worker
        victim = q.submit("analyze", {"n": 1})
        assert q.cancel(victim) is True
        assert q.poll(victim)["status"] == "cancelled"
        with pytest.raises(ServiceError) as exc_info:
            q.result(victim)
        assert exc_info.value.kind == "JobCancelled"
        gate.set()
        assert q.wait(blocker, 5)
        # give the worker a moment to (incorrectly) pick up the victim
        time.sleep(0.05)
        assert ran == [0], "cancelled job must never execute"
    finally:
        gate.set()
        q.stop()


def test_cancel_running_or_done_job_fails():
    started = threading.Event()
    gate = threading.Event()

    def handler(op, args):
        started.set()
        gate.wait(5)
        return {}

    q = JobQueue(handler, workers=1)
    try:
        jid = q.submit("analyze", {})
        assert started.wait(5)
        assert q.cancel(jid) is False  # running
        gate.set()
        assert q.wait(jid, 5)
        assert q.cancel(jid) is False  # done
        assert q.poll(jid)["status"] == "done"
    finally:
        gate.set()
        q.stop()


def test_unknown_job_id():
    q = JobQueue(lambda op, args: {}, workers=1)
    try:
        with pytest.raises(ServiceError) as exc_info:
            q.poll("job-999")
        assert exc_info.value.kind == "JobUnknown"
    finally:
        q.stop()


def test_stop_drains_and_rejects_new_work():
    q = JobQueue(lambda op, args: {"ok": True}, workers=2)
    jids = [q.submit("analyze", {"n": i}) for i in range(5)]
    q.stop(wait=True)
    for jid in jids:
        assert q.poll(jid)["status"] == "done"
    with pytest.raises(ServiceError, match="shutting down"):
        q.submit("analyze", {})


def test_snapshot_counts_by_status():
    q = JobQueue(lambda op, args: {}, workers=1)
    try:
        jid = q.submit("analyze", {})
        assert q.wait(jid, 5)
        snap = q.snapshot()
        assert snap["jobs"] == 1 and snap["by_status"]["done"] == 1
    finally:
        q.stop()
