"""Wire codec: typed round trips, version gating, argument validation."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.service.protocol import (
    PROTOCOL_VERSION, REQUEST_TYPES, AnalyzeRequest, Response, RunRequest,
    TuneRequest, decode_request, encode_request,
)
from repro.util.errors import ReproError, ServiceError

SRC = "param N\nreal A(0:N)\ndo I = 1, N\n  S1: A(I) = f(I)\nenddo"


def wire_roundtrip(req):
    # through actual JSON, like the socket would
    return decode_request(json.loads(json.dumps(encode_request(req))))


def test_every_request_type_roundtrips():
    samples = {
        "analyze": dict(program=SRC, refine=True, sample_params=("N=4",), jobs=2),
        "check": dict(program=SRC, spec="reverse(I)"),
        "transform": dict(program=SRC, spec="skew(I,I,0)", simplify=True),
        "complete": dict(program=SRC, lead="I"),
        "run": dict(program=SRC, params={"N": 8}, backend="source", trace=False),
        "tune": dict(program=SRC, name="k", params={"N": 16},
                     tile_sizes=(8, 16), top_k=1),
        "explain": dict(program=SRC, name="k", phase="legality",
                        spec="reverse(I)", params={"N": 4}),
        "submit": dict(submit_op="analyze", args={"program": SRC}),
        "job_poll": dict(job_id="job-1"),
        "job_result": dict(job_id="job-1"),
        "job_cancel": dict(job_id="job-1"),
        "ping": {},
        "metrics": {},
        "shutdown": {},
    }
    assert sorted(samples) == sorted(REQUEST_TYPES)
    for op, kwargs in samples.items():
        req = REQUEST_TYPES[op](**kwargs)
        back = wire_roundtrip(req)
        assert back == req, op
        assert back.op == op


def test_wrong_protocol_version_rejected():
    wire = encode_request(AnalyzeRequest(program=SRC))
    wire["protocol"] = PROTOCOL_VERSION + 1
    with pytest.raises(ServiceError, match="protocol"):
        decode_request(wire)


def test_unknown_op_rejected():
    with pytest.raises(ServiceError, match="unknown op"):
        decode_request({"protocol": PROTOCOL_VERSION, "op": "frobnicate"})


def test_unknown_argument_rejected():
    wire = encode_request(AnalyzeRequest(program=SRC))
    wire["args"]["bogus"] = 1
    with pytest.raises(ServiceError, match="bogus"):
        decode_request(wire)


def test_missing_required_argument_rejected():
    with pytest.raises(ServiceError, match="bad arguments"):
        decode_request({"protocol": PROTOCOL_VERSION, "op": "analyze", "args": {}})


def test_non_object_body_rejected():
    with pytest.raises(ServiceError):
        decode_request(["not", "a", "dict"])
    with pytest.raises(ServiceError, match="args"):
        decode_request(
            {"protocol": PROTOCOL_VERSION, "op": "analyze", "args": [1]}
        )


def test_json_lists_become_tuples():
    wire = encode_request(TuneRequest(program=SRC, tile_sizes=(8, 16)))
    assert wire["args"]["tile_sizes"] == [8, 16]  # JSON-safe on the wire
    back = decode_request(json.loads(json.dumps(wire)))
    assert back.tile_sizes == (8, 16)


def test_requests_are_frozen():
    req = RunRequest(program=SRC)
    with pytest.raises(dataclasses.FrozenInstanceError):
        req.backend = "source"


def test_response_roundtrip_ok_and_error():
    ok = Response(ok=True, result={"x": 1}, cached=True, served_ns=5)
    back = Response.from_wire(json.loads(json.dumps(ok.to_wire())))
    assert back.result == {"x": 1} and back.cached and back.served_ns == 5
    assert back.unwrap() == {"x": 1}

    err = Response(ok=False, error="boom", error_kind="ParseError")
    back = Response.from_wire(json.loads(json.dumps(err.to_wire())))
    with pytest.raises(ServiceError, match="boom") as exc_info:
        back.unwrap()
    assert exc_info.value.kind == "ParseError"
    assert isinstance(exc_info.value, ReproError)


def test_response_rejects_wrong_version_and_garbage():
    with pytest.raises(ServiceError):
        Response.from_wire({"ok": True, "protocol": PROTOCOL_VERSION + 1})
    with pytest.raises(ServiceError):
        Response.from_wire({"protocol": PROTOCOL_VERSION})
