"""Engine pool: canonical sharding, LRU eviction, caching, coalescing."""

from __future__ import annotations

import threading

import pytest

from repro.service.engine_pool import EnginePool

SRC = "param N\nreal A(0:N)\ndo I = 1, N\n  S1: A(I) = f(I)\nenddo"
#: same program, different surface syntax (whitespace)
SRC_VARIANT = "param N\nreal A(0:N)\ndo I = 1,N\n  S1:A(I) = f(I)\nenddo"


def prog(n: int) -> str:
    return f"param N\nreal A{n}(0:N)\ndo I = 1, N\n  S1: A{n}(I) = f(I)\nenddo"


def test_equal_programs_share_a_shard_across_formatting():
    pool = EnginePool(max_shards=8)
    a = pool.shard_for(SRC)
    b = pool.shard_for(SRC_VARIANT)
    assert a is b
    assert pool.stats["shard_hits"] == 1 and pool.stats["shard_misses"] == 1


def test_distinct_programs_get_distinct_shards():
    pool = EnginePool(max_shards=8)
    assert pool.shard_for(prog(1)) is not pool.shard_for(prog(2))
    assert pool.shard_count() == 2


def test_lru_eviction_bounds_the_shard_map():
    pool = EnginePool(max_shards=2)
    s1 = pool.shard_for(prog(1))
    pool.shard_for(prog(2))
    pool.shard_for(prog(3))  # evicts prog(1)
    assert pool.shard_count() == 2
    assert pool.stats["shard_evictions"] == 1
    s1_again = pool.shard_for(prog(1))  # re-parse, new shard object
    assert s1_again is not s1


def test_lru_order_is_recency_not_insertion():
    pool = EnginePool(max_shards=2)
    s1 = pool.shard_for(prog(1))
    pool.shard_for(prog(2))
    assert pool.shard_for(prog(1)) is s1  # touch 1 -> 2 is now LRU
    pool.shard_for(prog(3))  # evicts prog(2)
    assert pool.shard_for(prog(1)) is s1  # still warm


def test_compute_caches_results_per_signature():
    pool = EnginePool()
    shard = pool.shard_for(SRC)
    calls = []

    def fn():
        calls.append(1)
        return {"v": len(calls)}

    p1, cached1, _ = pool.compute(shard, ("op", ()), fn)
    p2, cached2, _ = pool.compute(shard, ("op", ()), fn)
    p3, cached3, _ = pool.compute(shard, ("op", ("x",)), fn)
    assert (p1, cached1) == ({"v": 1}, False)
    assert (p2, cached2) == ({"v": 1}, True)  # no second call
    assert (p3, cached3) == ({"v": 2}, False)  # different signature
    assert pool.stats["cache_hits"] == 1 and pool.stats["cache_misses"] == 2


def test_shard_result_cache_is_bounded_lru():
    pool = EnginePool(max_results_per_shard=2)
    shard = pool.shard_for(SRC)
    for i in range(3):
        pool.compute(shard, ("op", (i,)), lambda i=i: {"v": i})
    assert shard.cache_len() == 2
    assert shard.cached(("op", (0,))) is None  # oldest evicted
    assert shard.cached(("op", (2,))) == {"v": 2}


def test_identical_inflight_requests_coalesce():
    pool = EnginePool()
    shard = pool.shard_for(SRC)
    started = threading.Event()
    release = threading.Event()
    calls = []

    def slow():
        calls.append(1)
        started.set()
        release.wait(5)
        return {"v": "shared"}

    results = []

    def worker():
        results.append(pool.compute(shard, ("op", ()), slow))

    threads = [threading.Thread(target=worker) for _ in range(4)]
    threads[0].start()
    assert started.wait(5)
    for t in threads[1:]:
        t.start()
    # followers are registered before we release the leader
    deadline = threading.Event()
    for _ in range(100):
        if pool.stats["coalesced"] == 3:
            break
        deadline.wait(0.02)
    release.set()
    for t in threads:
        t.join(5)
    assert len(calls) == 1, "leader computed exactly once"
    payloads = sorted((p["v"], coalesced) for p, _, coalesced in results)
    assert [p for p, _ in payloads] == ["shared"] * 4
    assert sum(1 for _, c in payloads if c) == 3
    assert pool.stats["coalesced"] == 3


def test_leader_failure_propagates_to_followers():
    pool = EnginePool()
    shard = pool.shard_for(SRC)
    started = threading.Event()
    release = threading.Event()

    def boom():
        started.set()
        release.wait(5)
        raise ValueError("leader failed")

    errors = []

    def worker():
        try:
            pool.compute(shard, ("op", ()), boom)
        except ValueError as exc:
            errors.append(str(exc))

    threads = [threading.Thread(target=worker) for _ in range(3)]
    threads[0].start()
    assert started.wait(5)
    for t in threads[1:]:
        t.start()
    for _ in range(100):
        if pool.stats["coalesced"] == 2:
            break
        threading.Event().wait(0.02)
    release.set()
    for t in threads:
        t.join(5)
    assert errors == ["leader failed"] * 3
    # a failed flight is not cached; the next request recomputes
    with pytest.raises(ValueError):
        release.clear()
        started.clear()
        release.set()
        pool.compute(shard, ("op", ()), lambda: (_ for _ in ()).throw(ValueError("x")))


def test_snapshot_shape():
    pool = EnginePool(max_shards=4)
    shard = pool.shard_for(SRC)
    pool.compute(shard, ("op", ()), lambda: {"v": 1})
    snap = pool.snapshot()
    assert snap["shard_count"] == 1 and snap["max_shards"] == 4
    assert snap["shards"][0]["results"] == 1
    for key in ("shard_hits", "cache_misses", "coalesced"):
        assert key in snap
