"""Live daemon: warm-path results byte-identical to local pipeline runs,
HTTP surface, job ops, metrics, and remote CLI integration."""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro import api
from repro.ir import program_to_str
from repro.kernels import cholesky
from repro.service.client import ServiceClient
from repro.util.errors import ServiceError

SRC = program_to_str(cholesky())
LEGAL_SPEC = "skew(I,K,1)"
ILLEGAL_SPEC = "permute(I,K)"


def test_ping_and_healthz(daemon):
    server, client = daemon
    pong = client.ping()
    assert pong["pong"] is True and pong["uptime_seconds"] >= 0
    assert client.healthz() is True


class TestByteIdentity:
    """The service contract: warm payloads render exactly like local runs."""

    def test_analyze(self, daemon):
        _, client = daemon
        local = api.analyze_op(cholesky()).render()
        remote = api.AnalyzeResult.from_payload(client.analyze(SRC)).render()
        assert remote == local

    def test_analyze_refined(self, daemon):
        _, client = daemon
        local = api.analyze_op(
            cholesky(), refine=True, sample_param_texts=["N=5"]
        ).render()
        remote = api.AnalyzeResult.from_payload(
            client.analyze(SRC, refine=True, sample_params=["N=5"])
        ).render()
        assert remote == local

    def test_check_legal_and_illegal(self, daemon):
        _, client = daemon
        for spec in (LEGAL_SPEC, ILLEGAL_SPEC):
            local = api.check_op(cholesky(), spec)
            remote = api.CheckResult.from_payload(client.check(SRC, spec))
            assert remote.render() == local.render()
            assert remote.exit_code == local.exit_code

    def test_transform(self, daemon):
        _, client = daemon
        local = api.transform_op(cholesky(), LEGAL_SPEC).render()
        remote = api.TransformResult.from_payload(
            client.transform(SRC, LEGAL_SPEC)
        ).render()
        assert remote == local

    def test_complete(self, daemon):
        _, client = daemon
        local = api.complete_op(cholesky(), "L").render()
        remote = api.CompleteResult.from_payload(client.complete(SRC, "L")).render()
        assert remote == local

    def test_run_reference_and_trace(self, daemon):
        _, client = daemon
        local = api.run_op(cholesky(), {"N": 6}, trace=True).render()
        remote = api.RunResult.from_payload(
            client.run(SRC, {"N": 6}, trace=True)
        ).render()
        assert remote == local

    def test_run_source_backend(self, daemon):
        _, client = daemon
        local = api.run_op(cholesky(), {"N": 6}, backend="source").render()
        remote = api.RunResult.from_payload(
            client.run(SRC, {"N": 6}, backend="source")
        ).render()
        assert remote == local

    def test_explain_legality(self, daemon):
        _, client = daemon
        local = api.explain_op(
            cholesky(), phase="legality", spec=LEGAL_SPEC
        )
        remote = api.ExplainResult.from_payload(
            client.explain(SRC, name="cholesky", phase="legality",
                           spec=LEGAL_SPEC)
        )
        assert remote.render() == local.render()
        assert "cholesky" in remote.render()


class TestCachingOverHTTP:
    def test_second_identical_request_is_cached(self, daemon):
        _, client = daemon
        first = client.request_full("analyze", program=SRC)
        second = client.request_full("analyze", program=SRC)
        assert first.ok and not first.cached
        assert second.ok and second.cached
        assert first.result == second.result

    def test_formatting_variants_share_the_cache(self, daemon):
        _, client = daemon
        client.request_full("analyze", program=SRC)
        # re-serialize through a parse: different surface text, same program
        variant = SRC.replace("do ", "do  ")
        second = client.request_full("analyze", program=variant)
        assert second.cached

    def test_error_results_are_not_cached(self, daemon):
        _, client = daemon
        for _ in range(2):
            resp = client.request_full("transform", program=SRC, spec=ILLEGAL_SPEC)
            assert not resp.ok and not resp.cached
            assert resp.error_kind.endswith("Error")


class TestErrorRelay:
    def test_parse_error_kind(self, daemon):
        _, client = daemon
        with pytest.raises(ServiceError) as exc_info:
            client.analyze("do without end")
        assert exc_info.value.kind == "ParseError"

    def test_trace_needs_reference_backend(self, daemon):
        _, client = daemon
        with pytest.raises(ServiceError, match="reference"):
            client.run(SRC, {"N": 4}, backend="source", trace=True)

    def test_http_404(self, daemon):
        server, _ = daemon
        req = urllib.request.Request(server.url + "/nope", method="GET")
        try:
            urllib.request.urlopen(req)
        except urllib.error.HTTPError as err:
            assert err.code == 404
        else:  # pragma: no cover
            raise AssertionError("expected 404")


class TestJobsOverHTTP:
    def test_submit_and_wait(self, daemon):
        _, client = daemon
        jid = client.submit("analyze", program=SRC)
        payload = client.job_wait(jid, timeout=60)
        local = api.analyze_op(cholesky()).render()
        assert api.AnalyzeResult.from_payload(payload).render() == local

    def test_submit_validates_args_up_front(self, daemon):
        _, client = daemon
        with pytest.raises(ServiceError, match="bogus"):
            client.submit("analyze", program=SRC, bogus=1)
        with pytest.raises(ServiceError, match="cannot submit"):
            client.submit("ping")

    def test_job_errors_are_relayed(self, daemon):
        _, client = daemon
        jid = client.submit("analyze", program="not a program")
        with pytest.raises(ServiceError) as exc_info:
            client.job_wait(jid, timeout=60)
        assert exc_info.value.kind == "ParseError"


def test_metrics_endpoint(daemon):
    server, client = daemon
    client.analyze(SRC)
    client.analyze(SRC)
    m = client.metrics()
    assert m["pool"]["shard_count"] == 1
    assert m["pool"]["cache_hits"] >= 1
    assert m["jobs"]["jobs"] == 0
    # raw GET serves the same JSON
    with urllib.request.urlopen(server.url + "/metrics") as resp:
        raw = json.loads(resp.read())
    assert raw["pool"]["shard_count"] == 1


def test_symbolic_check_served_and_counted(daemon):
    """A symbolic appeal over the wire: byte-identical to local, and the
    oracle's counters/histograms surface in /metrics.  The in-process
    daemon shares this test's obs session (`repro serve` installs its
    own), so the /metrics snapshot sees the handler thread's counters."""
    from repro import obs
    from repro.kernels import syrk

    _, client = daemon
    syrk_src = program_to_str(syrk())
    local = api.check_op(syrk(), "reverse(K)", oracle="symbolic")
    with obs.session():
        remote = api.CheckResult.from_payload(
            client.check(syrk_src, "reverse(K)", symbolic=True)
        )
        m = client.metrics()
    assert remote.render() == local.render()
    assert remote.accepted and remote.exit_code == 0
    assert m["counters"].get("symbolic.attempts", 0) >= 1
    assert m["counters"].get("symbolic.certificates", 0) >= 1
    assert "symbolic.check_ns" in m["histograms"]


def test_tune_via_daemon_matches_cached_local_tune(daemon):
    server, client = daemon
    opts = dict(backend="reference", beam_width=2, depth=1, top_k=1,
                repeat=3, include_structural=False)
    first = api.TuneOutcome.from_payload(
        client.tune(SRC, {"N": 8}, name="cholesky", **opts)
    )
    assert first.program == "cholesky"
    assert any(r.get("winner") for r in first.rows)
    # the winner is persisted in the daemon's store; a local tune against
    # the same cache dir is a cache hit with the identical entry
    local = api.tune_op(
        cholesky(), {"N": 8}, cache_dir=server.service.tune_dir, **opts
    )
    assert local.from_cache
    remote_again = api.TuneOutcome.from_payload(
        client.tune(SRC, {"N": 8}, name="cholesky", **opts)
    )
    assert remote_again.from_cache
    assert remote_again.render() == local.render()


def test_shutdown_op_stops_the_daemon(make_daemon):
    server, client = make_daemon()
    client.shutdown()
    # the accept loop exits; subsequent requests fail with unreachable
    server.httpd.server_close()
    with pytest.raises(ServiceError):
        ServiceClient(server.url, timeout=2.0).ping()
