"""Concurrency gauntlet: a thread fleet of mixed operations against one
daemon must produce byte-identical results to serial local runs, even
while the shard map is evicting under pressure; async jobs cancel
cleanly on a live daemon; SIGTERM flushes the trace sink."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro import api
from repro.ir import program_to_str
from repro.kernels import cholesky, trmm
from repro.kernels.stencils import seidel_2d
from repro.util.errors import ServiceError

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

#: (kernel factory, legal spec, probe spec that may be legal or illegal)
KERNELS = [
    (cholesky, "skew(I,K,1)", "permute(I,K)"),
    (trmm, "interchange(I,J)", "reverse(I)"),
    (seidel_2d, "skew(J,I,1)", "reverse(I)"),
]


def _expected_workload():
    """The workload and its serial ground truth, computed locally.

    Each item is ``(op, program_text, kwargs, expected_render)`` — the
    daemon must reproduce ``expected_render`` byte-for-byte no matter
    how many threads are in flight or which shards were evicted.
    """
    items = []
    for factory, legal, probe in KERNELS:
        program = factory()
        src = program_to_str(program)
        items.append(
            ("analyze", src, {}, api.analyze_op(program).render())
        )
        items.append(
            ("check", src, {"spec": legal},
             api.check_op(program, legal).render())
        )
        items.append(
            ("check", src, {"spec": probe},
             api.check_op(program, probe).render())
        )
        items.append(
            ("transform", src, {"spec": legal},
             api.transform_op(program, legal).render())
        )
    return items


RESULT_TYPES = {
    "analyze": api.AnalyzeResult,
    "check": api.CheckResult,
    "transform": api.TransformResult,
}


def test_thread_fleet_matches_serial_under_shard_eviction(make_daemon):
    # max_shards=2 with three kernels in rotation: every round trips
    # over the LRU boundary, so results must survive shard re-parses
    server, client = make_daemon(max_shards=2)
    items = _expected_workload()
    rounds = 3
    work = [(i, item) for _ in range(rounds) for i, item in enumerate(items)]

    failures: list[str] = []
    lock = threading.Lock()

    def worker(chunk):
        for idx, (op, src, kwargs, expected) in chunk:
            try:
                payload = client.request(op, program=src, **kwargs)
                got = RESULT_TYPES[op].from_payload(payload).render()
            except Exception as exc:  # noqa: BLE001 - collected below
                with lock:
                    failures.append(f"item {idx} ({op}): {exc!r}")
                continue
            if got != expected:
                with lock:
                    failures.append(f"item {idx} ({op}): render diverged")

    n_threads = 8
    chunks = [work[i::n_threads] for i in range(n_threads)]
    threads = [threading.Thread(target=worker, args=(c,)) for c in chunks]
    for t in threads:
        t.start()
    for t in threads:
        t.join(120)
    assert not failures, "\n".join(failures)

    m = client.metrics()
    assert m["pool"]["shard_count"] <= 2
    assert m["pool"]["shard_evictions"] > 0, "eviction pressure never hit"
    assert m["counters"].get("service.errors", 0) == 0


def test_concurrent_tunes_share_the_persistent_store(make_daemon):
    server, client = make_daemon()
    src = program_to_str(cholesky())
    opts = dict(backend="reference", beam_width=2, depth=1, top_k=1,
                repeat=3, include_structural=False)
    # serial warm-up populates the daemon's tune store; the second call
    # is the deterministic cached render every concurrent tune must match
    client.tune(src, {"N": 8}, name="cholesky", **opts)
    expected = api.TuneOutcome.from_payload(
        client.tune(src, {"N": 8}, name="cholesky", **opts)
    )
    assert expected.from_cache

    renders: list[str] = []
    lock = threading.Lock()

    def worker():
        outcome = api.TuneOutcome.from_payload(
            client.tune(src, {"N": 8}, name="cholesky", **opts)
        )
        with lock:
            renders.append(outcome.render())

    threads = [threading.Thread(target=worker) for _ in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(120)
    assert len(renders) == 6
    assert all(r == expected.render() for r in renders)


def test_job_cancellation_on_a_live_daemon(make_daemon):
    # one worker: the slow blocker pins it, so the victim stays pending
    server, client = make_daemon(job_workers=1)
    src = program_to_str(cholesky())
    blocker = client.submit("run", program=src, params={"N": 60})
    victim = client.submit("analyze", program=src)
    assert client.job_cancel(victim) is True
    assert client.job_poll(victim)["status"] == "cancelled"
    with pytest.raises(ServiceError) as exc_info:
        client.job_result(victim)
    assert exc_info.value.kind == "JobCancelled"
    # the blocker is unaffected and completes normally
    payload = client.job_wait(blocker, timeout=120)
    local = api.run_op(cholesky(), {"N": 60}).render()
    assert api.RunResult.from_payload(payload).render() == local
    # a finished job cannot be cancelled
    assert client.job_cancel(blocker) is False


def test_sigterm_drains_and_flushes_the_trace(tmp_path):
    from repro.service.client import ServiceClient

    trace = tmp_path / "service-trace.jsonl"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--trace-json", str(trace), "--tune-dir", str(tmp_path / "tune")],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
    )
    try:
        line = proc.stdout.readline()
        assert "repro service listening on " in line, line
        url = line.strip().rsplit(" ", 1)[-1]
        client = ServiceClient(url, timeout=30.0)
        client.wait_ready(timeout=15.0)
        client.analyze(program_to_str(cholesky()))
        assert client.ping()["pong"] is True
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=30)
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup on failure
            proc.kill()
            proc.communicate()
    assert proc.returncode == 0, (out, err)
    assert "repro service stopped" in out
    # the trace sink was flushed and closed: every line parses, and the
    # request that ran before SIGTERM is in there
    lines = [json.loads(l) for l in trace.read_text().splitlines() if l]
    assert lines, "trace file is empty"
    assert any(
        str(entry.get("name", "")).startswith("service.") for entry in lines
    ), "service metrics never reached the sink"


def test_fuzzer_with_service_oracle_finds_no_divergence(make_daemon, tmp_path):
    from repro.fuzz.runner import fuzz_run

    server, client = make_daemon()
    session = fuzz_run(
        runs=8, seed=1234, jobs=1, minimize=False,
        corpus_dir=tmp_path / "corpus", service=server.url,
    )
    assert session.ok, session.summary()
    assert not session.divergences


def test_shutdown_drains_inflight_requests(make_daemon):
    # a request that is mid-flight when shutdown lands must still get
    # its answer: server_close() joins handler threads before returning
    server, client = make_daemon()
    src = program_to_str(cholesky())
    results: list[str] = []

    def slow_request():
        payload = client.run(src, {"N": 50})
        results.append(api.RunResult.from_payload(payload).render())

    t = threading.Thread(target=slow_request)
    t.start()
    time.sleep(0.15)  # let the request reach the handler
    server.request_shutdown()
    t.join(60)
    server.close()
    assert results == [api.run_op(cholesky(), {"N": 50}).render()]
