"""Shared daemon fixtures: an in-process ``ServiceServer`` per test."""

from __future__ import annotations

import threading

import pytest

from repro.service.client import ServiceClient
from repro.service.server import ServiceServer
from repro.util.errors import ServiceError


@pytest.fixture()
def make_daemon(tmp_path):
    """Factory: boot an in-process daemon and hand back (server, client).

    Every daemon gets an isolated tune cache under the test's tmp dir
    and is drained and closed at teardown regardless of test outcome.
    """
    started: list[tuple[ServiceServer, threading.Thread]] = []

    def boot(**kwargs) -> tuple[ServiceServer, ServiceClient]:
        kwargs.setdefault("tune_dir", str(tmp_path / f"tune{len(started)}"))
        server = ServiceServer(port=0, **kwargs)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        started.append((server, thread))
        client = ServiceClient(server.url, timeout=60.0)
        client.wait_ready(timeout=10.0)
        return server, client

    yield boot

    for server, thread in started:
        try:
            ServiceClient(server.url, timeout=5.0).shutdown()
        except ServiceError:
            server.request_shutdown()
        thread.join(10)
        server.close()


@pytest.fixture()
def daemon(make_daemon):
    return make_daemon()
