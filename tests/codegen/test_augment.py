"""Figure-7 augmentation."""

import pytest

from repro.codegen import augment_rows, project_dep
from repro.dependence import DepEntry
from repro.linalg import IntMatrix
from repro.util.errors import CodegenError


def dep(*tokens):
    return tuple(DepEntry.parse(t) for t in tokens)


class TestAugmentRows:
    def test_paper_s1_case(self):
        """§5.4: M_S1 = [0] with unsatisfied self-dep distance 1 ->
        append [1] (the new I2 loop)."""
        rows = augment_rows(IntMatrix([[0]]), [dep(1)])
        assert rows == [(1,)]

    def test_full_rank_no_rows(self):
        assert augment_rows(IntMatrix([[1, 0], [0, 1]]), []) == []

    def test_rank_deficient_no_deps(self):
        rows = augment_rows(IntMatrix([[1, 1], [1, 1]]), [])
        assert len(rows) == 1
        stacked = IntMatrix([[1, 1], [1, 1]]).vstack(IntMatrix(list(rows)))
        assert stacked.rank() == 2

    def test_carries_by_height(self):
        # zero map, dep carried at position 1
        rows = augment_rows(IntMatrix([[0, 0]]), [dep(0, 2)])
        assert rows[0] == (0, 1)
        assert len(rows) == 2  # topped up to rank 2

    def test_multiple_deps_same_height(self):
        rows = augment_rows(IntMatrix([[0, 0]]), [dep(1, 0), dep(2, -1)])
        assert rows[0] == (1, 0)

    def test_zero_or_positive_falls_through(self):
        # '0+' at position 0 may be zero: position 1 must also be carried
        rows = augment_rows(IntMatrix.zeros(1, 2), [dep("0+", 1)])
        assert rows == [(1, 0), (0, 1)]

    def test_negative_height_entry_rejected(self):
        with pytest.raises(CodegenError):
            augment_rows(IntMatrix([[0]]), [dep("-")])

    def test_zero_columns_trivial(self):
        assert augment_rows(IntMatrix([]), []) == []


class TestProjectDep:
    def test_projection_selects_positions(self):
        d = dep(5, "+", 0, -1)
        assert project_dep(d, [0, 3]) == dep(5, -1)
        assert project_dep(d, []) == ()
