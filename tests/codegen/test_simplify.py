"""Simplification and peeling passes (§5.5)."""

import pytest

from repro.codegen import generate_code
from repro.codegen.simplify import fold_expr, peel_iteration, simplify_program
from repro.instance import Layout
from repro.interp import ArrayStore, execute, outputs_close
from repro.ir import Guard, parse_expr, parse_program, program_to_str
from repro.polyhedra import System, ge, var
from repro.transform import skew
from repro.util.errors import CodegenError

ASSUME = System([ge(var("N"), 1)])


class TestFoldExpr:
    @pytest.mark.parametrize(
        "src,expected",
        [
            ("0 + I", "I"),
            ("I + 0", "I"),
            ("1 * I", "I"),
            ("I * 1", "I"),
            ("2 + 3", "5"),
            ("2 * 3 - 1", "5"),
            ("I - 0", "I"),
        ],
    )
    def test_folds(self, src, expected):
        assert str(fold_expr(parse_expr(src))) == str(parse_expr(expected))

    def test_double_negation(self):
        assert str(fold_expr(parse_expr("-(-I)"))) == "I"

    def test_plus_negative_literal(self):
        out = fold_expr(parse_expr("I + (0 - 3)"))
        assert "- 3" in str(out) or "-3" in str(out)

    def test_subscripts_folded(self):
        e = fold_expr(parse_expr("A(0 + J, 1 * J)"))
        assert str(e) == "A(J, J)"


@pytest.fixture(scope="module")
def skew_gen(request):
    from repro.kernels import augmentation_example

    aug = augmentation_example()
    lay = Layout(aug)
    return aug, generate_code(aug, skew(lay, "I", "J", -1).matrix)


class TestSimplifyProgram:
    def test_matches_paper_unsimplified_form(self, skew_gen):
        aug, g = skew_gen
        simp = simplify_program(g.program, ASSUME)
        text = program_to_str(simp, header=False)
        # the paper's generated loop structure (§5.4):
        assert "do I = -N + 1, 0" in text
        assert "do J = -I + 1, N" in text
        assert "do I2 = 1, N" in text
        assert "if (I >= 0)" in text  # == I = 0 under the loop's I <= 0

    def test_redundant_guard_removed(self, skew_gen):
        aug, g = skew_gen
        simp = simplify_program(g.program, ASSUME)
        # S2's guard (I + N >= 1) is implied by the loop bounds
        text = program_to_str(simp)
        assert text.count("if (") == 1

    def test_semantics_preserved(self, skew_gen):
        aug, g = skew_gen
        simp = simplify_program(g.program, ASSUME)
        init = ArrayStore(aug, {"N": 8}).snapshot()
        s0, _ = execute(aug, {"N": 8}, arrays=init)
        s1, _ = execute(simp, {"N": 8}, arrays=init)
        assert outputs_close(s0.snapshot(), s1.snapshot())

    def test_idempotent(self, skew_gen):
        _, g = skew_gen
        once = simplify_program(g.program, ASSUME)
        twice = simplify_program(once, ASSUME)
        assert program_to_str(once, header=False) == program_to_str(twice, header=False)

    def test_infeasible_guard_removes_body(self):
        from repro.polyhedra import ge0

        p = parse_program("param N\nreal A(N)\ndo I = 1..N\n S1: A(I) = 1.0\nenddo")
        loop = p.body[0]
        guarded = loop.with_body((Guard((ge0(var("I") * 0 - 1),), loop.body),))
        p2 = p.with_body((guarded,))
        simp = simplify_program(p2, ASSUME)
        assert simp.body == () or not list(simp.statements())


class TestPeel:
    def test_reproduces_paper_simplified_code(self, skew_gen):
        """§5.5's final simplified form: separate S2 loop nest over
        I < 0, a diagonal A(J,J) loop, and the recurrence loop."""
        aug, g = skew_gen
        simp = simplify_program(g.program, ASSUME)
        peeled = simplify_program(peel_iteration(simp, (0,), "upper"), ASSUME)
        text = program_to_str(peeled, header=False)
        assert "do I = -N + 1, -1" in text
        assert "A(J, J) = f(J, J)" in text
        assert "do I2 = 1, N" in text
        assert "if (" not in text  # all guards resolved by peeling

    def test_peel_preserves_semantics(self, skew_gen):
        aug, g = skew_gen
        simp = simplify_program(g.program, ASSUME)
        peeled = simplify_program(peel_iteration(simp, (0,), "upper"), ASSUME)
        init = ArrayStore(aug, {"N": 10}).snapshot()
        s0, _ = execute(aug, {"N": 10}, arrays=init)
        s1, _ = execute(peeled, {"N": 10}, arrays=init)
        assert outputs_close(s0.snapshot(), s1.snapshot())

    def test_peel_lower(self):
        p = parse_program("param N\nreal A(0:N)\ndo I = 1..N\n S1: A(I) = A(I-1)\nenddo")
        peeled = simplify_program(peel_iteration(p, (0,), "lower"))
        text = program_to_str(peeled, header=False)
        assert "do I = 2, N" in text
        assert "A(1) = A(0)" in text

    def test_peel_labels_fresh(self):
        p = parse_program("param N\nreal A(0:N)\ndo I = 1..N\n S1: A(I) = A(I-1)\nenddo")
        peeled = peel_iteration(p, (0,), "upper")
        labels = [s.label for s in peeled.statements()]
        assert len(set(labels)) == len(labels)

    def test_peel_nonloop_rejected(self, simp_chol):
        with pytest.raises(CodegenError):
            peel_iteration(simp_chol, (0, 0))

    def test_peel_nonunit_step_rejected(self):
        p = parse_program("param N\nreal A(0:N)\ndo I = 1..N, 2\n S1: A(I) = 1.0\nenddo")
        with pytest.raises(CodegenError):
            peel_iteration(p, (0,))
