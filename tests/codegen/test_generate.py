"""Code generation end-to-end (the paper's §5, experiment E7)."""

import pytest

from repro.codegen import generate_code, per_statement_transformation
from repro.instance import Layout
from repro.interp import check_equivalence
from repro.ir import Guard, Loop, parse_program, program_to_str
from repro.legality import recover_structure
from repro.linalg import IntMatrix
from repro.transform import compose, permutation, reversal, skew, statement_reorder


class TestPerStatement:
    """Definition 7 on the §5.4 example: M_S1 = [0], M_S2 = [[1,-1],[0,1]]."""

    def test_paper_matrices(self, aug, aug_layout):
        t = skew(aug_layout, "I", "J", -1)
        st = recover_structure(aug_layout, t.matrix)
        ps1 = per_statement_transformation(aug_layout, t.matrix, st, "S1")
        ps2 = per_statement_transformation(aug_layout, t.matrix, st, "S2")
        assert ps1.linear == IntMatrix([[0]])
        assert ps1.is_singular()
        assert ps2.linear == IntMatrix([[1, -1], [0, 1]])
        assert not ps2.is_singular()

    def test_identity(self, aug, aug_layout):
        st = recover_structure(aug_layout, IntMatrix.identity(4))
        ps2 = per_statement_transformation(aug_layout, IntMatrix.identity(4), st, "S2")
        assert ps2.linear == IntMatrix.identity(2)
        assert ps2.offsets == (0, 0)

    def test_alignment_offset(self, simp_chol, simp_chol_layout):
        from repro.transform import alignment

        t = alignment(simp_chol_layout, "S2", "I", -3)
        st = recover_structure(simp_chol_layout, t.matrix)
        ps2 = per_statement_transformation(simp_chol_layout, t.matrix, st, "S2")
        assert ps2.offsets == (-3, 0)


class TestSkewExample:
    """The full §5.4 pipeline."""

    @pytest.fixture(scope="class")
    def generated(self, aug):
        lay = Layout(aug)
        return generate_code(aug, skew(lay, "I", "J", -1).matrix)

    def test_augmented_loop_added(self, generated):
        plan = generated.plan("S1")
        assert len(plan.extra_names) == 1
        assert plan.extra_names[0].startswith("I")

    def test_s1_guarded(self, generated):
        text = program_to_str(generated.program)
        assert "if (" in text

    def test_nonsingular_matrices(self, generated):
        assert generated.plan("S2").nonsingular == IntMatrix([[1, -1], [0, 1]])
        n1 = generated.plan("S1").nonsingular
        assert n1.rank() == 1  # [0] completed by [1]

    def test_subscripts_rewritten(self, generated):
        text = program_to_str(generated.program)
        assert "A((I + J), J)" in text

    def test_equivalence_multiple_sizes(self, aug, generated):
        for n in (1, 2, 5, 11):
            rep = check_equivalence(aug, generated.program, {"N": n}, env_map=generated.env_map())
            assert rep["ok"], (n, rep)

    def test_exactness_flag(self, generated):
        assert generated.exact


class TestLoopTransformsRoundtrip:
    def test_identity_regenerates_equivalent(self, simp_chol):
        lay = Layout(simp_chol)
        g = generate_code(simp_chol, IntMatrix.identity(4))
        rep = check_equivalence(simp_chol, g.program, {"N": 7}, env_map=g.env_map())
        assert rep["ok"]

    def test_inner_reversal(self, simp_chol):
        lay = Layout(simp_chol)
        g = generate_code(simp_chol, reversal(lay, "J").matrix)
        rep = check_equivalence(simp_chol, g.program, {"N": 7}, env_map=g.env_map())
        assert rep["ok"]

    def test_cholesky_jl_interchange(self, chol):
        lay = Layout(chol)
        g = generate_code(chol, permutation(lay, "J", "L").matrix)
        rep = check_equivalence(chol, g.program, {"N": 6}, env_map=g.env_map())
        assert rep["ok"]

    def test_reorder_where_legal(self):
        p = parse_program(
            "param N\nreal A(N), B(N)\n"
            "do I = 1..N\n S1: A(I) = f(I)\n S2: B(I) = g(I)\nenddo"
        )
        lay = Layout(p)
        t, _ = statement_reorder(lay, (0,), [1, 0])
        g = generate_code(p, t.matrix)
        assert [s.label for s in g.program.statements()] == ["S2", "S1"]
        rep = check_equivalence(p, g.program, {"N": 5}, env_map=g.env_map())
        assert rep["ok"]

    def test_composed_transform(self, chol):
        lay = Layout(chol)
        t = compose(permutation(lay, "J", "L"), permutation(lay, "J", "L"))
        g = generate_code(chol, t.matrix)
        rep = check_equivalence(chol, g.program, {"N": 5}, env_map=g.env_map())
        assert rep["ok"]


class TestRejection:
    def test_illegal_matrix_raises(self, simp_chol):
        from repro.util.errors import LegalityError

        lay = Layout(simp_chol)
        with pytest.raises(LegalityError):
            generate_code(simp_chol, permutation(lay, "I", "J").matrix)

class TestNonUnimodular:
    """Loop scaling (|det N_S| > 1): HNF lattice scanning with
    divisibility guards — the Li–Pingali [10] extension."""

    def test_scaling_generates_strided_scan(self):
        from repro.transform import scaling

        p = parse_program(
            "param N\nreal A(0:N)\ndo I = 1..N\n S1: A(I) = A(I-1) + f(I)\nenddo"
        )
        lay = Layout(p)
        g = generate_code(p, scaling(lay, "I", 2).matrix)
        text = program_to_str(g.program, header=False)
        assert "% 2" in text  # divisibility guard
        plan = g.plan("S1")
        assert plan.lattice is not None
        assert len(plan.lattice_conditions) == 1

    def test_scaling_equivalence(self):
        from repro.transform import scaling

        p = parse_program(
            "param N\nreal A(0:N)\ndo I = 1..N\n S1: A(I) = A(I-1) + f(I)\nenddo"
        )
        lay = Layout(p)
        for factor in (2, 3, -2):
            try:
                g = generate_code(p, scaling(lay, "I", factor).matrix)
            except Exception:
                if factor < 0:
                    continue  # negative scaling reverses: illegal here
                raise
            rep = check_equivalence(p, g.program, {"N": 9}, env_map=g.env_map())
            assert rep["ok"], factor

    def test_scaled_imperfect_nest(self, simp_chol):
        from repro.transform import scaling

        lay = Layout(simp_chol)
        g = generate_code(simp_chol, scaling(lay, "J", 3).matrix)
        rep = check_equivalence(simp_chol, g.program, {"N": 7}, env_map=g.env_map())
        assert rep["ok"]

    def test_composed_scale_and_skew(self):
        from repro.transform import compose, scaling, skew

        p = parse_program(
            "param N\nreal A(-99:3*N+99,-99:3*N+99)\n"
            "do I = 1..N\n do J = 1..N\n  S1: A(I,J) = f(I,J)\n enddo\nenddo"
        )
        lay = Layout(p)
        t = compose(skew(lay, "J", "I", 1), scaling(lay, "I", 2))
        g = generate_code(p, t.matrix)
        rep = check_equivalence(p, g.program, {"N": 5}, env_map=g.env_map())
        assert rep["ok"]


class TestGeneratedShape:
    def test_loop_nesting_matches_skeleton(self, aug):
        lay = Layout(aug)
        g = generate_code(aug, skew(lay, "I", "J", -1).matrix)
        top = g.program.body
        assert len(top) == 1 and isinstance(top[0], Loop)

    def test_guard_conditions_reference_outer_vars_only(self, aug):
        lay = Layout(aug)
        g = generate_code(aug, skew(lay, "I", "J", -1).matrix)

        def walk(node, names):
            if isinstance(node, Loop):
                for c in node.body:
                    walk(c, names | {node.var})
            elif isinstance(node, Guard):
                for cond in node.conditions:
                    assert cond.variables() <= names | set(g.program.params)
                for c in node.body:
                    walk(c, names)

        for n in g.program.body:
            walk(n, set())
