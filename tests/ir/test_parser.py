"""Unit tests for the mini loop-language parser."""

import pytest

from repro.ir import (
    ArrayRef, BinOp, Call, Loop, UnaryOp, VarRef, parse_expr, parse_program,
    program_to_str,
)
from repro.util.errors import ParseError


class TestExpressions:
    def test_precedence(self):
        e = parse_expr("1 + 2 * 3")
        assert isinstance(e, BinOp) and e.op == "+"
        assert isinstance(e.right, BinOp) and e.right.op == "*"

    def test_parentheses(self):
        e = parse_expr("(1 + 2) * 3")
        assert isinstance(e, BinOp) and e.op == "*"

    def test_unary_minus(self):
        e = parse_expr("-x + 1")
        assert isinstance(e, BinOp)
        assert isinstance(e.left, UnaryOp)

    def test_array_vs_call(self):
        assert isinstance(parse_expr("A(I)"), ArrayRef)
        assert isinstance(parse_expr("sqrt(I)"), Call)

    def test_nested_refs(self):
        e = parse_expr("A(B(I), J+1)")
        assert isinstance(e, ArrayRef)
        assert isinstance(e.subscripts[0], ArrayRef)

    def test_float_literal(self):
        e = parse_expr("1.5")
        assert e.value == 1.5

    def test_unknown_char(self):
        with pytest.raises(ParseError):
            parse_expr("x @ y")

    def test_trailing_junk(self):
        with pytest.raises(ParseError):
            parse_expr("x + ) y")


class TestPrograms:
    SRC = """
    param N
    real A(N), B(0:N)
    do I = 1..N
      S1: A(I) = sqrt(A(I))
      do J = I+1, N
        A(J) = A(J) / A(I)
      end do
    enddo
    """

    def test_params_and_arrays(self):
        p = parse_program(self.SRC)
        assert p.params == ("N",)
        assert [a.name for a in p.arrays] == ["A", "B"]
        assert p.array("B").dims[0][0].constant == 0

    def test_auto_labels(self):
        p = parse_program(self.SRC)
        labels = [s.label for s in p.statements()]
        assert labels[0] == "S1"
        assert len(labels) == 2 and labels[1] != "S1"

    def test_range_separators(self):
        a = parse_program("do I = 1..5\n x = I\nenddo")
        b = parse_program("do I = 1, 5\n x = I\nenddo")
        assert isinstance(a.body[0], Loop) and isinstance(b.body[0], Loop)
        assert a.body[0].lower == b.body[0].lower

    def test_end_do_and_enddo(self):
        p = parse_program("do I = 1..2\n x = I\nend do")
        assert isinstance(p.body[0], Loop)

    def test_comments(self):
        p = parse_program("! header comment\ndo I = 1..2 # tail\n x = I\nenddo")
        assert len(p.statements()) == 1

    def test_step(self):
        p = parse_program("do I = 1..10, 2\n x = I\nenddo")
        assert p.body[0].step == 2

    def test_scalar_assignment(self):
        p = parse_program("do I = 1..2\n acc = acc + I\nenddo")
        s = p.statements()[0]
        assert isinstance(s.lhs, VarRef)

    def test_label_not_confused_with_array(self):
        p = parse_program("do I = 1..2\n A(I) = I\nenddo")
        s = p.statements()[0]
        assert isinstance(s.lhs, ArrayRef)

    def test_missing_enddo(self):
        with pytest.raises(ParseError):
            parse_program("do I = 1..2\n x = I\n")

    def test_non_affine_bound_rejected(self):
        with pytest.raises(Exception):
            parse_program("do I = 1..A(3)\n x = I\nenddo")

    def test_roundtrip_through_printer(self):
        p = parse_program(self.SRC, "rt")
        text = program_to_str(p)
        p2 = parse_program(text, "rt")
        assert program_to_str(p2) == text

    def test_multiple_top_level_loops(self):
        p = parse_program("do I = 1..2\n x = I\nenddo\ndo J = 1..2\n y = J\nenddo")
        assert len(p.body) == 2

    def test_semicolon_separators(self):
        p = parse_program("do I = 1..2; x = I; y = I; enddo")
        assert len(p.statements()) == 2
