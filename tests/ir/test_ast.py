"""Unit tests for the loop-nest AST."""

import pytest

from repro.ir import (
    ArrayDecl, BoundSet, Guard, HullBound, IntLit, Loop, Program, Statement,
    VarRef, parse_program, simplify_hull,
)
from repro.ir.expr import ArrayRef
from repro.polyhedra import ge0, var
from repro.polyhedra.bounds import Bound
from repro.util.errors import IRError


def stmt(label="S1", arr="A", v="I"):
    return Statement(label, ArrayRef(arr, [VarRef(v)]), IntLit(0))


class TestBoundSet:
    def test_affine_constructor(self):
        b = BoundSet.affine(5, True)
        assert b.eval({}) == 5

    def test_max_semantics_for_lower(self):
        b = BoundSet((Bound(var("x"), 1, True), Bound(var("y"), 1, True)), True)
        assert b.eval({"x": 2, "y": 7}) == 7

    def test_min_semantics_for_upper(self):
        b = BoundSet((Bound(var("x"), 1, False), Bound(var("y"), 1, False)), False)
        assert b.eval({"x": 2, "y": 7}) == 2

    def test_polarity_mismatch(self):
        with pytest.raises(IRError):
            BoundSet((Bound(var("x"), 1, False),), True)

    def test_empty_rejected(self):
        with pytest.raises(IRError):
            BoundSet((), True)

    def test_single_affine(self):
        assert BoundSet.affine(var("N"), False).single_affine() == var("N")
        multi = BoundSet((Bound(var("x"), 1, False), Bound(var("y"), 1, False)), False)
        with pytest.raises(IRError):
            multi.single_affine()


class TestHullBound:
    def test_lower_hull_is_min(self):
        g1 = BoundSet.affine(var("a"), True)
        g2 = BoundSet.affine(var("b"), True)
        h = HullBound((g1, g2), True)
        assert h.eval({"a": 3, "b": 1}) == 1

    def test_upper_hull_is_max(self):
        g1 = BoundSet.affine(var("a"), False)
        g2 = BoundSet.affine(var("b"), False)
        h = HullBound((g1, g2), False)
        assert h.eval({"a": 3, "b": 1}) == 3

    def test_simplify_collapses_identical(self):
        g = BoundSet.affine(1, True)
        assert simplify_hull(HullBound((g, g), True)) == g


class TestProgramQueries:
    SRC = """
    param N
    real A(N,N), B(0:N)
    do I = 1..N
      do J = 2..4
        S1: A(I,J) = f(I)
        S2: A(I,J) = g(I)
      enddo
      S3: B(I) = f(I)
    enddo
    """

    def test_statement_order(self):
        p = parse_program(self.SRC)
        assert [s.label for s in p.statements()] == ["S1", "S2", "S3"]

    def test_enclosing_loops(self):
        p = parse_program(self.SRC)
        assert p.loop_vars("S1") == ["I", "J"]
        assert p.loop_vars("S3") == ["I"]

    def test_common_loop_vars(self):
        p = parse_program(self.SRC)
        assert p.common_loop_vars("S1", "S3") == ["I"]
        assert p.common_loop_vars("S1", "S2") == ["I", "J"]

    def test_syntactic_order_reflexive(self):
        p = parse_program(self.SRC)
        assert p.syntactically_before("S1", "S1")
        assert p.syntactically_before("S2", "S3")
        assert not p.syntactically_before("S3", "S2")

    def test_statement_lookup(self):
        p = parse_program(self.SRC)
        assert p.statement("S3").label == "S3"
        with pytest.raises(IRError):
            p.statement("nope")

    def test_fresh_label(self):
        p = parse_program(self.SRC)
        assert p.fresh_label() not in {"S1", "S2", "S3"}

    def test_all_loops(self):
        p = parse_program(self.SRC)
        assert [l.var for l in p.all_loops()] == ["I", "J"]


class TestValidation:
    def test_duplicate_labels_rejected(self):
        with pytest.raises(IRError):
            Program((stmt("X"), stmt("X")))

    def test_shadowing_rejected(self):
        inner = Loop.make("I", 1, 2, [stmt()])
        with pytest.raises(IRError):
            Program((Loop.make("I", 1, 2, [inner]),))

    def test_param_shadowing_rejected(self):
        with pytest.raises(IRError):
            Program((Loop.make("N", 1, 2, [stmt(v="N")]),), params=("N",))

    def test_sibling_loops_may_share_var(self):
        a = Loop.make("I", 1, 2, [stmt("S1")])
        b = Loop.make("I", 1, 2, [stmt("S2")])
        Program((a, b))  # no raise


class TestSubstitution:
    def test_statement_substitution(self):
        s = stmt()
        out = s.substituted({"I": IntLit(3)})
        assert isinstance(out.lhs, ArrayRef)
        assert out.lhs.subscripts[0] == IntLit(3)

    def test_loop_bound_substitution(self):
        l = Loop.make("J", var("I"), var("N"), [stmt(v="J")])
        out = l.substituted({"I": IntLit(5)})
        assert out.lower.eval({}) == 5

    def test_bound_loop_var_protected(self):
        l = Loop.make("J", 1, 2, [stmt(v="J")])
        with pytest.raises(IRError):
            l.substituted({"J": IntLit(1)})

    def test_guard_substitution(self):
        g = Guard((ge0(var("I")),), (stmt(),))
        out = g.substituted({"I": IntLit(-1)})
        assert out.conditions[0].is_trivially_false()


class TestArrayDecl:
    def test_make_defaults(self):
        d = ArrayDecl.make("A", var("N"), (0, var("N")))
        assert d.rank == 2
        assert d.dims[0][0].constant == 1
        assert d.dims[1][0].constant == 0

    def test_str(self):
        d = ArrayDecl.make("A", var("N"))
        assert str(d) == "A(N)"
        d2 = ArrayDecl.make("B", (0, var("N")))
        assert str(d2) == "B(0:N)"


class TestStatementAccessors:
    def test_reads_include_lhs_subscript_arrays(self):
        p = parse_program("do I = 1..2\n A(B(I)) = 1.0\nenddo",)
        s = p.statements()[0]
        arrays_read = {r.array for r in s.reads()}
        assert "B" in arrays_read

    def test_writes(self):
        s = stmt()
        assert [w.array for w in s.writes()] == ["A"]

    def test_scalar_write(self):
        s = Statement("S", VarRef("acc"), IntLit(1))
        assert s.writes() == []
