"""Pretty-printer tests."""


from repro.ir import (
    BoundSet, ExprCondition, Guard, HullBound, IntLit, Loop, Statement,
    VarRef, node_to_str, parse_expr, parse_program, program_to_str,
)
from repro.ir.expr import ArrayRef
from repro.polyhedra import eq, ge0, var
from repro.polyhedra.bounds import Bound


def stmt(label="S1"):
    return Statement(label, ArrayRef("A", [VarRef("I")]), IntLit(1))


class TestPrinting:
    def test_header_toggle(self, simp_chol):
        with_header = program_to_str(simp_chol)
        without = program_to_str(simp_chol, header=False)
        assert with_header.startswith("param N")
        assert without.startswith("do I")

    def test_step_printed_only_when_nonunit(self):
        l1 = Loop.make("I", 1, 5, [stmt()])
        l2 = Loop.make("I", 1, 5, [stmt()], step=2)
        assert ", 2" not in node_to_str(l1)
        assert node_to_str(l2).startswith("do I = 1, 5, 2")

    def test_guard_with_constraint(self):
        g = Guard((eq(var("I"), 0),), (stmt(),))
        text = node_to_str(g)
        assert text.startswith("if (I == 0) then")
        assert text.endswith("endif")

    def test_guard_with_expr_condition(self):
        g = Guard((ExprCondition(parse_expr("I % 2")),), (stmt(),))
        assert "(I % 2) == 0" in node_to_str(g)

    def test_multiple_conditions_joined(self):
        g = Guard((ge0(var("I")), ge0(var("J") - 1)), (stmt(),))
        assert " and " in node_to_str(g)

    def test_max_min_bounds(self):
        lo = BoundSet((Bound(var("a"), 1, True), Bound(var("b"), 1, True)), True)
        hi = BoundSet((Bound(var("c"), 1, False),), False)
        l = Loop("I", lo, hi, (stmt(),))
        assert "max(a, b)" in node_to_str(l)

    def test_divided_bounds(self):
        lo = BoundSet((Bound(var("a"), 2, True),), True)
        l = Loop("I", lo, BoundSet.affine(9, False), (stmt(),))
        assert "ceild(a, 2)" in node_to_str(l)

    def test_hull_bounds(self):
        g1 = BoundSet.affine(var("a"), True)
        g2 = BoundSet.affine(var("b"), True)
        l = Loop("I", HullBound((g1, g2), True), BoundSet.affine(9, False), (stmt(),))
        assert "min(a, b)" in node_to_str(l)

    def test_indentation_depth(self, chol):
        text = program_to_str(chol, header=False)
        # the innermost statement S3 is indented three levels
        line = next(l for l in text.splitlines() if "S3" in l)
        assert line.startswith("      ")

    def test_roundtrip_many_kernels(self):
        from repro.kernels import (
            cholesky, forward_substitution, lu_factorization, matmul,
            simplified_cholesky, triangular_solve,
        )

        for prog in (
            simplified_cholesky(), cholesky(), lu_factorization(),
            triangular_solve(), forward_substitution(), matmul(),
        ):
            text = program_to_str(prog)
            again = program_to_str(parse_program(text, prog.name))
            assert again == text, prog.name
