"""Unit tests for expression trees and affine conversion."""

import pytest

from repro.ir import (
    BinOp, Call, IntLit, UnaryOp, VarRef, affine_to_expr, as_affine,
    parse_expr,
)
from repro.polyhedra import LinExpr, var
from repro.util.errors import IRError


class TestTreeQueries:
    def test_variables(self):
        e = parse_expr("A(I) + J * 2 - sqrt(K)")
        assert e.variables() == {"I", "J", "K"}

    def test_array_refs_in_order(self):
        e = parse_expr("A(I) + B(J) * A(K)")
        assert [r.array for r in e.array_refs()] == ["A", "B", "A"]

    def test_nested_array_refs(self):
        e = parse_expr("A(B(I))")
        assert [r.array for r in e.array_refs()] == ["B", "A"]

    def test_substitute_vars(self):
        e = parse_expr("A(I) + I")
        out = e.substitute_vars({"I": IntLit(7)})
        assert out.array_refs()[0].subscripts[0] == IntLit(7)

    def test_operator_sugar(self):
        e = VarRef("x") + 1
        assert isinstance(e, BinOp) and e.op == "+"
        assert isinstance(-VarRef("x"), UnaryOp)
        assert isinstance(VarRef("x") / 2, BinOp)


class TestValidation:
    def test_unknown_function_rejected(self):
        with pytest.raises(IRError):
            Call("bogus", [IntLit(1)])

    def test_unknown_binop_rejected(self):
        with pytest.raises(IRError):
            BinOp("**", IntLit(1), IntLit(2))

    def test_bool_not_coercible(self):
        with pytest.raises(IRError):
            VarRef("x") + True  # type: ignore[operator]


class TestAffineConversion:
    def test_simple(self):
        assert as_affine(parse_expr("2*I - J + 3")) == 2 * var("I") - var("J") + 3

    def test_constant_times_var_both_orders(self):
        assert as_affine(parse_expr("I*3")) == 3 * var("I")
        assert as_affine(parse_expr("3*I")) == 3 * var("I")

    def test_unary(self):
        assert as_affine(parse_expr("-(I+1)")) == -var("I") - 1

    def test_nonlinear_rejected(self):
        with pytest.raises(IRError):
            as_affine(parse_expr("I*J"))

    def test_division_rejected(self):
        with pytest.raises(IRError):
            as_affine(parse_expr("I/2"))

    def test_array_ref_rejected(self):
        with pytest.raises(IRError):
            as_affine(parse_expr("A(I)"))

    def test_roundtrip(self):
        for src in ("I + 1", "2*I - 3*J", "-I", "7"):
            lin = as_affine(parse_expr(src))
            assert as_affine(affine_to_expr(lin)) == lin

    def test_affine_to_expr_constant(self):
        e = affine_to_expr(LinExpr({}, 4))
        assert e == IntLit(4)


class TestBuiltins:
    def test_f_deterministic(self):
        from repro.ir import BUILTIN_FUNCTIONS

        f = BUILTIN_FUNCTIONS["f"]
        assert f(1.0, 2.0) == f(1.0, 2.0)
        assert f(1.0) != f(2.0)

    def test_sqrt(self):
        from repro.ir import BUILTIN_FUNCTIONS

        assert BUILTIN_FUNCTIONS["sqrt"](9.0) == 3.0
