"""Histogram math: log2 buckets, percentiles, bucket-wise merging."""

from __future__ import annotations

from repro import obs
from repro.obs import Histogram
from repro.obs.report import render_histograms


def hist_of(*values) -> Histogram:
    h = Histogram()
    for v in values:
        h.add(v)
    return h


class TestBuckets:
    def test_bucket_index_is_bit_length(self):
        h = hist_of(0, 1, 2, 3, 4, 1024)
        # bucket 0 = exactly 0; bucket i covers [2**(i-1), 2**i - 1]
        assert h.buckets == {0: 1, 1: 1, 2: 2, 3: 1, 11: 1}

    def test_count_total_max(self):
        h = hist_of(5, 10, 3)
        assert (h.count, h.total, h.max) == (3, 18, 10)
        assert h.mean == 6.0

    def test_negative_values_clamp_to_zero(self):
        h = hist_of(-7)
        assert h.buckets == {0: 1}
        assert h.max == 0


class TestPercentiles:
    def test_empty_is_zero(self):
        h = Histogram()
        assert (h.p50, h.p90, h.p99, h.mean) == (0, 0, 0, 0.0)

    def test_single_sample_clamps_to_exact_max(self):
        # bucket upper bound for 1000 is 1023, but the tracked max wins
        h = hist_of(1000)
        assert h.p50 == h.p99 == 1000

    def test_known_distribution(self):
        # values 1,2,4,8 land in buckets 1..4 with one sample each:
        # p50 rank 2 -> bucket 2 upper bound 3; p99 rank 4 -> clamped max
        h = hist_of(1, 2, 4, 8)
        assert h.p50 == 3
        assert h.p99 == 8

    def test_within_2x_of_true_value(self):
        values = [17, 33, 129, 511, 2000, 65, 90, 1023]
        h = hist_of(*values)
        for q in (0.5, 0.9, 0.99):
            est = h.percentile(q)
            assert est <= max(values)
            # log2 buckets: the estimate is at most 2x any sample <= it
            assert any(v <= est < 2 * max(v, 1) for v in values)

    def test_percentiles_monotone_in_q(self):
        h = hist_of(1, 5, 9, 200, 3000)
        assert h.p50 <= h.p90 <= h.p99 <= h.max


class TestMerge:
    def test_merge_equals_union(self):
        a_vals, b_vals = [1, 7, 7, 300], [0, 2, 300, 5000]
        merged = hist_of(*a_vals)
        merged.merge(hist_of(*b_vals))
        assert merged == hist_of(*(a_vals + b_vals))

    def test_merge_from_dict_form(self):
        # workers ship histograms as to_dict() payloads across pickling
        merged = hist_of(1, 2)
        merged.merge(hist_of(4, 9000).to_dict())
        assert merged == hist_of(1, 2, 4, 9000)

    def test_merge_order_independent(self):
        parts = [hist_of(1, 2), hist_of(1024), hist_of(0, 0, 63)]
        fwd, rev = Histogram(), Histogram()
        for p in parts:
            fwd.merge(p)
        for p in reversed(parts):
            rev.merge(p)
        assert fwd == rev

    def test_to_from_dict_round_trip(self):
        h = hist_of(3, 99, 4096)
        clone = Histogram.from_dict(h.to_dict())
        assert clone == h
        assert clone.to_dict() == h.to_dict()

    def test_copy_is_independent(self):
        h = hist_of(5)
        c = h.copy()
        c.add(1_000_000)
        assert h == hist_of(5)
        assert c != h


class TestSessionPrimitive:
    def test_noop_without_session(self):
        assert obs.current_session() is None
        obs.histogram("ignored", 5)  # must not raise
        assert obs.snapshot_histograms() == {}

    def test_aggregates_in_session(self, mem):
        obs.histogram("fm.query_ns", 100)
        obs.histogram("fm.query_ns", 200)
        obs.histogram("codegen.generate_ns", 7)
        sess = obs.current_session()
        assert sess.histograms["fm.query_ns"].count == 2
        assert sess.histograms["codegen.generate_ns"].count == 1

    def test_snapshot_copies_are_independent(self, mem):
        obs.histogram("h", 1)
        snap = obs.snapshot_histograms()
        obs.histogram("h", 2)
        assert snap["h"].count == 1
        assert obs.current_session().histograms["h"].count == 2

    def test_flushed_to_sink_on_uninstall(self, mem):
        obs.histogram("h", 64)
        obs.uninstall()
        assert mem.hists["h"] == hist_of(64)


class TestRender:
    def test_render_shows_percentile_columns(self):
        text = render_histograms({"fm.query_ns": hist_of(100, 2000, 90000)})
        assert "fm.query_ns" in text
        for col in ("count", "p50", "p90", "p99", "max"):
            assert col in text

    def test_render_empty(self):
        assert render_histograms({}) == "(no histograms recorded)"
