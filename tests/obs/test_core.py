"""Span nesting/ordering, counter aggregation, session lifecycle."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs import timed
from repro.util.errors import ObsError, ReproError


class TestSpans:
    def test_nesting_and_ordering(self, mem):
        with obs.span("root"):
            with obs.span("child1"):
                pass
            with obs.span("child2"):
                with obs.span("grand"):
                    pass
        obs.uninstall()
        assert len(mem.roots) == 1
        root = mem.roots[0]
        assert root.name == "root"
        assert [c.name for c in root.children] == ["child1", "child2"]
        assert [c.name for c in root.children[1].children] == ["grand"]
        # pre-order walk with depths
        assert [(s.name, d) for s, d in root.walk()] == [
            ("root", 0), ("child1", 1), ("child2", 1), ("grand", 2),
        ]
        # ids are assigned in start order
        names_by_id = sorted((s.id, s.name) for s, _ in root.walk())
        assert [n for _, n in names_by_id] == ["root", "child1", "child2", "grand"]

    def test_durations_nonzero_and_contained(self, mem):
        with obs.span("outer"):
            with obs.span("inner"):
                sum(range(1000))
        outer = mem.find("outer")[0]
        inner = mem.find("inner")[0]
        assert inner.duration_ns > 0
        assert outer.duration_ns >= inner.duration_ns
        assert outer.start_ns <= inner.start_ns
        assert inner.end_ns <= outer.end_ns

    def test_sibling_roots(self, mem):
        with obs.span("a"):
            pass
        with obs.span("b"):
            pass
        assert [r.name for r in mem.roots] == ["a", "b"]
        assert all(r.parent is None for r in mem.roots)

    def test_children_emitted_before_parents(self, mem):
        with obs.span("p"):
            with obs.span("c"):
                pass
        assert [s.name for s in mem.spans] == ["c", "p"]

    def test_attrs_and_error_marker(self, mem):
        with pytest.raises(ValueError):
            with obs.span("work", program="chol"):
                raise ValueError("boom")
        sp = mem.find("work")[0]
        assert sp.attrs["program"] == "chol"
        assert sp.attrs["error"] == "ValueError"
        assert sp.end_ns is not None

    def test_noop_when_no_session(self):
        assert obs.current_session() is None
        with obs.span("ignored", k=1) as sp:
            assert sp is None
        obs.counter("ignored")
        obs.gauge("ignored", 3)
        assert obs.snapshot() == ({}, {})


class TestCountersAndGauges:
    def test_counter_aggregation(self, mem):
        obs.counter("x")
        obs.counter("x", 2)
        obs.counter("y", 5)
        counters, _ = obs.snapshot()
        assert counters == {"x": 3, "y": 5}
        obs.uninstall()
        assert mem.counters == {"x": 3, "y": 5}

    def test_gauge_last_value_wins(self, mem):
        obs.gauge("g", 1)
        obs.gauge("g", 9)
        obs.uninstall()
        assert mem.gauges == {"g": 9}


class TestSessionLifecycle:
    def test_install_twice_raises(self, mem):
        with pytest.raises(ObsError):
            obs.install()

    def test_uninstall_without_install_raises(self):
        with pytest.raises(ObsError):
            obs.uninstall()

    def test_obs_error_is_repro_error(self):
        assert issubclass(ObsError, ReproError)

    def test_session_context_manager(self):
        sink = obs.MemorySink()
        with obs.session(sink) as sess:
            obs.counter("k")
            assert obs.current_session() is sess
        assert obs.current_session() is None
        assert sink.counters == {"k": 1}


class TestTimed:
    def test_bare_decorator_default_name(self, mem):
        @timed
        def helper():
            return 42

        assert helper() == 42
        assert len(mem.find("test_core.helper")) == 1

    def test_named_with_attr_fn(self, mem):
        @timed("layer.op", attr_fn=lambda x, **kw: {"x": x})
        def helper(x):
            return x + 1

        assert helper(1) == 2
        sp = mem.find("layer.op")[0]
        assert sp.attrs == {"x": 1}

    def test_no_session_passthrough(self):
        calls = []

        @timed("layer.op", attr_fn=lambda: calls.append("attr"))
        def helper():
            return "ok"

        assert helper() == "ok"  # attr_fn must not run without a session
        assert calls == []

    def test_nested_timed_functions(self, mem):
        @timed("outer.fn")
        def outer():
            return inner()

        @timed("inner.fn")
        def inner():
            return 7

        assert outer() == 7
        root = mem.find("outer.fn")[0]
        assert [c.name for c in root.children] == ["inner.fn"]
