"""Every instrumented decision point emits its documented events.

One test class per pipeline phase (legality, completion, vectorize,
tune, fuzz) plus the latency histograms (FM queries, codegen), and a
hypothesis property: an illegal transform on a random program always
leaves at least one ``legality`` reject event explaining why.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.dependence import analyze_dependences
from repro.instance import Layout
from repro.ir import parse_program
from repro.kernels import cholesky, random_program, simplified_cholesky
from repro.legality import check_legality
from repro.linalg import IntMatrix
from repro.polyhedra import engine
from repro.transform import permutation, reversal, skew


class TestLegalityEvents:
    def test_reject_names_dependence_and_projection(self, mem):
        program = simplified_cholesky()
        layout = Layout(program)
        deps = analyze_dependences(program, layout=layout)
        t = permutation(layout, "I", "J")
        report = check_legality(layout, t.matrix, deps)

        assert not report.legal
        rejects = mem.events_for("legality", "reject")
        assert rejects, "illegal transform produced no reject event"
        dep_strs = {str(d) for d in deps}
        for ev in rejects:
            assert "Theorem 2" in ev.reason
            assert ev.attrs["dep"] in dep_strs  # names the offending dependence
            assert ev.attrs["projection"].startswith("(")
            assert ev.attrs["sign"]

    def test_legal_transform_emits_accepts_only(self, mem):
        program = simplified_cholesky()
        layout = Layout(program)
        deps = analyze_dependences(program, layout=layout)
        t = skew(layout, "J", "I", 1)
        report = check_legality(layout, t.matrix, deps)

        assert report.legal
        assert not mem.events_for("legality", "reject")
        accepts = mem.events_for("legality", "accept")
        assert len(accepts) == len(report.statuses)
        assert all("dep" in ev.attrs for ev in accepts)

    def test_structure_rejection_event(self, mem):
        program = simplified_cholesky()
        layout = Layout(program)
        deps = analyze_dependences(program, layout=layout)
        n = layout.dimension
        zero = IntMatrix([[0] * n for _ in range(n)])
        report = check_legality(layout, zero, deps)

        assert not report.legal
        rejects = mem.events_for("legality", "reject")
        assert any("block structure" in ev.reason for ev in rejects)


class TestCompletionEvents:
    def test_successful_completion_accepted_with_matrix(self, mem):
        from repro.completion import complete_transformation

        result = complete_transformation(simplified_cholesky())
        accepts = mem.events_for("complete", "accept")
        assert len(accepts) == 1
        assert accepts[0].attrs["matrix"] == str([list(r) for r in result.matrix])

    def test_unrealizable_lead_leaves_reject_trail(self, mem):
        from repro.completion.enabling import complete_with_restructuring
        from repro.util.errors import CompletionError

        with pytest.raises(CompletionError):
            complete_with_restructuring(cholesky(), "I")
        rejects = mem.events_for("complete", "reject")
        assert rejects
        # the backtracker names the row and dependence that clashed
        assert any("dep" in ev.attrs and "row" in ev.attrs for ev in rejects)
        # and the restructuring driver records each failed variant's moves
        assert any(ev.attrs.get("lead") == "I" for ev in rejects)


class TestVectorizeEvents:
    def test_per_loop_doall_verdicts(self, mem):
        from repro.backend.vectorize import doall_loop_vars

        doall = doall_loop_vars(cholesky())
        verdicts = {
            ev.attrs["loop"]: ev.verdict
            for ev in mem.events_for("vectorize")
            if "loop" in ev.attrs
        }
        assert set(verdicts) == {"K", "I", "J", "L"}
        assert {v for v, verdict in verdicts.items() if verdict == "accept"} == doall
        k_reject = next(
            ev for ev in mem.events_for("vectorize", "reject")
            if ev.attrs.get("loop") == "K"
        )
        # the disqualifying reason names the carried dependences
        assert "carries dependence" in k_reject.reason
        assert "S3->S3" in k_reject.reason

    def test_vectorized_loop_accept_names_target(self, mem):
        from repro.backend.lower import lower_program

        lowered = lower_program(cholesky(), vectorize=True)
        slice_accepts = [
            ev for ev in mem.events_for("vectorize", "accept")
            if "target" in ev.attrs
        ]
        assert len(slice_accepts) == lowered.vectorized_loops == 2
        assert {ev.attrs["target"] for ev in slice_accepts} == {
            "A(I, K)", "A(J, L)",
        }

    def test_reject_names_blocking_access(self, mem):
        from repro.backend.lower import lower_program

        # LHS varies with the loop in two subscript dimensions: no
        # single strided slice writes it, so the loop must stay scalar
        program = parse_program(
            """
            param N
            real A(N, N)
            do I = 1, N
              S1: A(I, I) = A(I, I) + 1.0
            enddo
            """,
            "diag_update",
        )
        lowered = lower_program(program, vectorize=True)
        assert lowered.vectorized_loops == 0
        rejects = [
            ev for ev in mem.events_for("vectorize", "reject")
            if ev.attrs.get("access")
        ]
        assert rejects, "blocked loop produced no access-naming reject"
        assert rejects[0].attrs["access"] == "A(I, I)"
        assert "2 dimensions" in rejects[0].reason


class TestTuneEvents:
    @pytest.fixture(scope="class")
    def tuned_session(self, tmp_path_factory):
        from repro.tune import TuneStore, tune

        store = TuneStore(tmp_path_factory.mktemp("tune"))
        sink = obs.MemorySink()
        with obs.session(sink):
            result = tune(
                simplified_cholesky(), {"N": 8}, store=store,
                backend="source", beam_width=2, depth=1, top_k=2,
            )
        return sink, result

    def test_scored_candidates_accepted_with_score(self, tuned_session):
        sink, result = tuned_session
        scored = [
            ev for ev in sink.events_for("tune", "accept")
            if "statically scored" in ev.reason
        ]
        assert len(scored) == result.scored
        assert all(float(ev.attrs["score"]) > 0 for ev in scored)

    def test_pruned_candidates_rejected_with_culprit(self, tuned_session):
        sink, result = tuned_session
        pruned = sink.events_for("tune", "reject")
        assert len(pruned) == result.pruned
        assert all("pruned_by" in ev.attrs for ev in pruned)

    def test_beam_rank_recorded(self, tuned_session):
        sink, _ = tuned_session
        ranked = [
            ev for ev in sink.events_for("tune")
            if "cost_rank" in ev.attrs
        ]
        assert ranked
        survivors = [ev for ev in ranked if ev.verdict == "accept"]
        below_cut = [ev for ev in ranked if ev.verdict == "info"]
        assert survivors and below_cut
        assert min(int(ev.attrs["cost_rank"]) for ev in survivors) == 1

    def test_measurements_and_tau_summary(self, tuned_session):
        sink, _ = tuned_session
        measures = sink.events_for("tune", "measure")
        assert measures
        assert all(float(ev.attrs["seconds"]) > 0 for ev in measures)
        assert any(ev.attrs.get("baseline") == "true" for ev in measures)
        taus = [
            ev for ev in sink.events_for("tune", "info")
            if "tau" in ev.attrs
        ]
        assert len(taus) == 1


class TestFuzzEvents:
    def test_per_case_provenance(self, mem):
        from repro.fuzz.runner import fuzz_run

        session = fuzz_run(5, seed=3, corpus_dir=None)
        events = mem.events_for("fuzz")
        assert [ev.attrs["index"] for ev in events] == [0, 1, 2, 3, 4]
        assert all("case_kind" in ev.attrs for ev in events)
        # verdict counts in the session match the event stream
        from collections import Counter

        assert Counter(ev.reason for ev in events) == Counter(
            session.verdict_counts
        )


class TestLatencyHistograms:
    def test_fm_query_and_cache_hit_latency(self, mem):
        engine.cache_clear()
        analyze_dependences(simplified_cholesky())
        sess = obs.current_session()
        cold_hits = sess.histograms["fm.cache_hit_ns"].count
        assert sess.histograms["fm.query_ns"].count > 0
        # a warm re-run answers from the memoized engine: only the
        # cache-hit histogram grows
        cold_queries = sess.histograms["fm.query_ns"].count
        analyze_dependences(simplified_cholesky())
        assert sess.histograms["fm.query_ns"].count == cold_queries
        assert sess.histograms["fm.cache_hit_ns"].count > cold_hits

    def test_codegen_time_histogram(self, mem):
        from repro.codegen import generate_code
        from repro.completion import complete_transformation

        program = simplified_cholesky()
        layout = Layout(program)
        deps = analyze_dependences(program, layout=layout)
        completed = complete_transformation(program, deps=deps, layout=layout)
        generate_code(program, completed.matrix, deps)
        h = obs.current_session().histograms["codegen.generate_ns"]
        assert h.count == 1
        assert h.max > 0

    def test_no_histograms_without_session(self):
        assert obs.current_session() is None
        engine.cache_clear()
        analyze_dependences(simplified_cholesky())  # must not record or raise
        assert obs.snapshot_histograms() == {}


hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


class TestIllegalAlwaysExplained:
    """Property: a transform ruled illegal always leaves evidence."""

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 5000), pick=st.integers(0, 5))
    def test_illegal_random_transform_emits_reject(self, seed, pick):
        program = random_program(seed, max_depth=2, max_children=2)
        layout = Layout(program)
        loops = [c.var for c in layout.loop_coords()]
        deps = analyze_dependences(program, layout=layout)

        if pick < 2 or len(loops) < 2:
            t = reversal(layout, loops[pick % len(loops)])
        elif pick < 4:
            t = permutation(layout, loops[0], loops[-1])
        else:
            t = skew(layout, loops[0], loops[-1], -1 if pick == 4 else 2)

        sink = obs.MemorySink()
        with obs.session(sink):
            report = check_legality(layout, t.matrix, deps)
        rejects = sink.events_for("legality", "reject")

        # reject events appear exactly when the verdict is ILLEGAL...
        assert bool(rejects) == (not report.legal)
        # ...and each one carries actionable evidence: the offending
        # dependence + projection, or the structural failure detail
        for ev in rejects:
            assert ("dep" in ev.attrs and "projection" in ev.attrs) or (
                "detail" in ev.attrs
            )
