"""Fixtures for the observability tests: a fresh session per test."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture()
def mem():
    """A MemorySink installed for the duration of the test."""
    sink = obs.MemorySink()
    obs.install(sink)
    try:
        yield sink
    finally:
        if obs.current_session() is not None:
            obs.uninstall()
