"""The bench history ledger and the rolling-median trend gate."""

from __future__ import annotations

import json
import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2]))

from benchmarks.compare import main as compare_main, trend_gate  # noqa: E402
from benchmarks.history import (  # noqa: E402
    MIN_PRIOR, append_snapshot, git_sha, load_history, metrics_from_result,
    snapshot_row, trend_failures,
)


def payload(source_seconds=0.01, speedup=2.0, tune_best=0.02):
    """A minimal BENCH_result payload with backend + tune tables.

    ``speedup`` is independent of ``source_seconds`` so CLI tests can
    inject a seconds trend regression without tripping the absolute
    backend gate (which requires source speedup >= 1).
    """
    return {
        "schema": 1,
        "repro_version": "1.0.0",
        "python": "3.12.0",
        "benchmarks": [],
        "pipeline": {"span_last_ns": {}},
        "backend": [
            {"kernel": "cholesky", "backend": "source",
             "seconds": source_seconds, "speedup": speedup,
             "ok": True, "error": ""},
            {"kernel": "cholesky", "backend": "reference",
             "seconds": None, "speedup": None, "ok": True, "error": ""},
        ],
        "tune": [
            {"kernel": "cholesky", "params": {"N": 40}, "backend": "source-vec",
             "winner": "lead(J)", "baseline_seconds": 0.03,
             "best_seconds": tune_best, "speedup": 0.03 / tune_best,
             "ok": True, "error": ""},
        ],
    }


class TestSnapshotRows:
    def test_metrics_flattening(self):
        metrics = metrics_from_result(payload())
        assert metrics["backend:cholesky/source:seconds"] == 0.01
        assert metrics["backend:cholesky/source:speedup"] == pytest.approx(2.0)
        assert metrics["tune:cholesky:best_seconds"] == 0.02
        assert metrics["tune:cholesky:baseline_seconds"] == 0.03
        # the reference row has no numbers -> contributes nothing
        assert not any("reference" in k for k in metrics)

    def test_snapshot_row_schema(self):
        row = snapshot_row(payload(), sha="abc123", created=1000.0)
        assert row["schema"] == 1
        assert row["sha"] == "abc123"
        assert row["created"] == 1000.0
        assert row["version"] == "1.0.0"
        assert row["python"] == "3.12.0"
        assert isinstance(row["metrics"], dict) and row["metrics"]

    def test_git_sha_in_this_repo(self):
        sha = git_sha()
        assert sha == "unknown" or (
            len(sha) == 40 and all(c in "0123456789abcdef" for c in sha)
        )

    def test_git_sha_outside_repo(self, tmp_path):
        assert git_sha(tmp_path) == "unknown"


class TestLedgerIo:
    def test_append_and_load_round_trip(self, tmp_path):
        ledger = tmp_path / "BENCH_history.jsonl"
        path1, row1 = append_snapshot(payload(0.01), ledger, sha="s1")
        path2, row2 = append_snapshot(payload(0.02), ledger, sha="s2")
        assert path1 == path2 == ledger
        rows = load_history(ledger)
        assert [r["sha"] for r in rows] == ["s1", "s2"]
        assert rows[0]["metrics"] == row1["metrics"]
        # every line is independently parseable
        for line in ledger.read_text().splitlines():
            json.loads(line)

    def test_malformed_lines_skipped(self, tmp_path):
        ledger = tmp_path / "h.jsonl"
        append_snapshot(payload(), ledger, sha="good")
        with ledger.open("a") as f:
            f.write("{truncated\n")
            f.write("42\n")
            f.write("\n")
        append_snapshot(payload(), ledger, sha="good2")
        assert [r["sha"] for r in load_history(ledger)] == ["good", "good2"]

    def test_missing_file_is_empty(self, tmp_path):
        assert load_history(tmp_path / "nope.jsonl") == []


def rows_at(*source_seconds):
    return [snapshot_row(payload(s), sha=f"r{i}", created=float(i))
            for i, s in enumerate(source_seconds)]


class TestTrendFailures:
    def test_bootstrap_never_fails(self):
        fails, report = trend_failures(
            snapshot_row(payload(9.9), sha="f", created=0.0),
            rows_at(0.01)[: MIN_PRIOR - 1],
        )
        assert not fails
        assert any("bootstrap" in line for line in report)

    def test_injected_2x_seconds_regression_fails(self):
        fresh = snapshot_row(payload(0.02), sha="f", created=0.0)
        fails, report = trend_failures(fresh, rows_at(0.01, 0.01, 0.01))
        assert any("backend:cholesky/source:seconds" in f for f in fails)
        assert any("TREND  FAIL" in line for line in report)

    def test_speedup_drop_fails(self):
        # speedup metrics regress downward (lower is worse)
        fresh = snapshot_row(payload(speedup=1.0), sha="f", created=0.0)
        fails, _ = trend_failures(fresh, rows_at(0.01, 0.01, 0.01))
        assert any("backend:cholesky/source:speedup" in f for f in fails)
        assert any("below the trend" in f for f in fails)

    def test_improvement_passes(self):
        fresh = snapshot_row(payload(0.005), sha="f", created=0.0)
        fails, _ = trend_failures(fresh, rows_at(0.01, 0.01, 0.01))
        assert not any("seconds" in f for f in fails)

    def test_within_tolerance_passes(self):
        fresh = snapshot_row(payload(0.012), sha="f", created=0.0)
        fails, report = trend_failures(
            fresh, rows_at(0.01, 0.01, 0.01), tolerance=0.25
        )
        assert not any("backend:cholesky/source:seconds" in f for f in fails)
        assert any("[         ok]" in line for line in report)

    def test_rolling_window_ages_out_old_era(self):
        # ancient slow rows fall outside the window: the median comes
        # from the recent fast rows, so a return to the slow value fails
        prior = rows_at(0.08, 0.08, 0.01, 0.01, 0.01)
        fresh = snapshot_row(payload(0.08), sha="f", created=9.0)
        fails, _ = trend_failures(fresh, prior, window=3)
        assert any("backend:cholesky/source:seconds" in f for f in fails)

    def test_median_robust_to_one_outlier(self):
        prior = rows_at(0.01, 0.5, 0.01)  # one lucky/cursed snapshot
        fresh = snapshot_row(payload(0.011), sha="f", created=9.0)
        fails, _ = trend_failures(fresh, prior)
        assert not any("backend:cholesky/source:seconds" in f for f in fails)


class TestTrendGate:
    def test_excludes_own_trailing_row(self, tmp_path):
        # emission appends the fresh run's row before compare runs; the
        # gate must not compare the run against itself
        ledger = tmp_path / "h.jsonl"
        for s in (0.01, 0.01):
            append_snapshot(payload(s), ledger)
        fresh = payload(0.05)
        append_snapshot(fresh, ledger)  # the run's own row
        fails, _ = trend_gate(fresh, ledger)
        assert any("backend:cholesky/source:seconds" in f for f in fails)
        # with only bootstrap-depth priors remaining, nothing passes
        # silently: remove one prior row and the gate reports bootstrap
        short = tmp_path / "short.jsonl"
        append_snapshot(payload(0.01), short)
        append_snapshot(fresh, short)
        fails2, report2 = trend_gate(fresh, short)
        assert not fails2
        assert any("bootstrap" in line for line in report2)


class TestCompareCliTrend:
    def _write(self, tmp_path, name, data):
        p = tmp_path / name
        p.write_text(json.dumps(data))
        return str(p)

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        ledger = tmp_path / "h.jsonl"
        for _ in range(3):
            append_snapshot(payload(0.01), ledger)
        fresh = payload(0.02)  # 2x slower than the trend
        rc = compare_main(
            [
                self._write(tmp_path, "base.json", fresh),
                self._write(tmp_path, "fresh.json", fresh),
                "--trend", str(ledger),
            ]
        )
        out = capsys.readouterr()
        assert rc == 1
        assert "TREND  FAIL" in out.out
        assert "trend gate failure(s)" in out.err

    def test_steady_trend_passes(self, tmp_path, capsys):
        ledger = tmp_path / "h.jsonl"
        for _ in range(3):
            append_snapshot(payload(0.01), ledger)
        fresh = payload(0.0101)
        rc = compare_main(
            [
                self._write(tmp_path, "base.json", fresh),
                self._write(tmp_path, "fresh.json", fresh),
                "--trend", str(ledger),
            ]
        )
        assert rc == 0
        assert "benchmark gate passed" in capsys.readouterr().out

    def test_trend_tolerance_flag(self, tmp_path):
        ledger = tmp_path / "h.jsonl"
        for _ in range(3):
            append_snapshot(payload(0.01), ledger)
        fresh = payload(0.013)  # 30% above trend
        argv = [
            self._write(tmp_path, "base.json", fresh),
            self._write(tmp_path, "fresh.json", fresh),
            "--trend", str(ledger),
        ]
        assert compare_main(argv) == 1
        assert compare_main(argv + ["--trend-tolerance", "0.5"]) == 0
