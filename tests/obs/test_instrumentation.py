"""The pipeline layers actually emit their documented spans and counters."""

from __future__ import annotations

from repro import (
    Layout,
    analyze_dependences,
    check_legality,
    generate_code,
    obs,
    skew,
)
from repro.completion import complete_transformation
from repro.interp import simulate_cache, trace_addresses
from repro.interp.executor import execute
from repro.kernels import simplified_cholesky
from repro.polyhedra import engine


class TestDependenceInstrumentation:
    def test_analyze_span_and_counters(self, mem):
        # Start from a cold query cache: with warm memoized results no
        # eliminations would be performed and fm.* would stay at zero.
        engine.cache_clear()
        program = simplified_cholesky()
        analyze_dependences(program)

        spans = mem.find("dependence.analyze")
        assert len(spans) == 1
        assert spans[0].attrs["program"] == program.name
        assert spans[0].duration_ns > 0

        counters, _ = obs.snapshot()
        assert counters["dependence.pairs_tested"] > 0
        assert counters["dependence.vectors"] > 0
        # dependence analysis drives Fourier-Motzkin underneath
        assert counters["fm.eliminations"] > 0
        assert counters["fm.feasibility_queries"] > 0


class TestLegalityInstrumentation:
    def test_check_span_and_counters(self, mem):
        program = simplified_cholesky()
        layout = Layout(program)
        deps = analyze_dependences(program, layout=layout)
        t = skew(layout, "J", "I", 1)
        report = check_legality(layout, t.matrix, deps)

        assert report.legal
        assert len(mem.find("legality.check")) == 1
        counters, _ = obs.snapshot()
        assert counters["legality.checks"] == 1
        assert counters["legality.projections_checked"] > 0


class TestCompletionInstrumentation:
    def test_complete_span_and_counters(self, mem):
        program = simplified_cholesky()
        layout = Layout(program)
        deps = analyze_dependences(program, layout=layout)
        complete_transformation(program, deps=deps, layout=layout)

        assert len(mem.find("completion.complete")) == 1
        counters, _ = obs.snapshot()
        assert counters["completion.rows_tried"] > 0


class TestCodegenInstrumentation:
    def test_generate_spans_and_counters(self, mem):
        program = simplified_cholesky()
        layout = Layout(program)
        deps = analyze_dependences(program, layout=layout)
        t = skew(layout, "J", "I", 1)
        generate_code(program, t.matrix, deps)

        gen = mem.find("codegen.generate")
        assert len(gen) == 1
        # projection spans nest under the generate span
        assert gen[0].find("codegen.project")
        assert gen[0].find("codegen.emit")
        counters, _ = obs.snapshot()
        assert counters["codegen.statements_planned"] == len(program.statements())
        assert counters["codegen.ast_nodes"] > 0


class TestInterpInstrumentation:
    def test_execute_and_cache_counters(self, mem):
        program = simplified_cholesky()
        store, trace = execute(program, {"N": 6}, trace=True)
        simulate_cache(trace_addresses(trace, store))

        assert len(mem.find("interp.execute")) == 1
        assert len(mem.find("interp.cache_sim")) == 1
        counters, _ = obs.snapshot()
        # one instance per traced statement execution
        assert counters["interp.instances"] == len(trace)
        assert counters["cache.accesses"] > 0
        assert counters["cache.misses"] > 0
        assert counters["cache.misses"] <= counters["cache.accesses"]


class TestSpanNestingAcrossLayers:
    def test_pipeline_under_one_root(self, mem):
        with obs.span("pipeline"):
            program = simplified_cholesky()
            layout = Layout(program)
            deps = analyze_dependences(program, layout=layout)
            completed = complete_transformation(program, deps=deps, layout=layout)
            generate_code(program, completed.matrix, deps)

        assert [r.name for r in mem.roots] == ["pipeline"]
        root = mem.roots[0]
        names = {sp.name for sp, _ in root.walk()}
        assert {"ir.parse", "dependence.analyze", "completion.complete",
                "codegen.generate"} <= names
