"""Unit tests for the benchmark regression gate (benchmarks/compare.py)."""

import json
import pathlib
import sys

import pytest

BENCH_DIR = pathlib.Path(__file__).resolve().parent.parent.parent / "benchmarks"
sys.path.insert(0, str(BENCH_DIR.parent))

from benchmarks.compare import compare_results, main  # noqa: E402


def result(bench_means=(), spans=()):
    return {
        "schema": 1,
        "benchmarks": [
            {"name": name, "mean_s": mean_s} for name, mean_s in bench_means
        ],
        "pipeline": {"span_last_ns": dict(spans)},
    }


class TestCompareResults:
    def test_clean_when_identical(self):
        payload = result(
            bench_means=[("t_a", 0.01)], spans=[("codegen.generate", 5_000_000)]
        )
        regressions, compared, skipped = compare_results(payload, payload)
        assert not regressions
        assert len(compared) == 2
        assert not skipped

    def test_flags_over_factor_regression(self):
        base = result(spans=[("dependence.analyze", 10_000_000)])
        fresh = result(spans=[("dependence.analyze", 25_000_000)])
        regressions, _, _ = compare_results(base, fresh, factor=2.0)
        assert [r.metric for r in regressions] == ["pipeline:dependence.analyze"]
        assert regressions[0].ratio == pytest.approx(2.5)

    def test_within_factor_passes(self):
        base = result(bench_means=[("t", 0.010)])
        fresh = result(bench_means=[("t", 0.019)])
        regressions, _, _ = compare_results(base, fresh, factor=2.0)
        assert not regressions

    def test_sub_floor_noise_ignored(self):
        """A 40us span tripling is scheduler noise, not a regression."""
        base = result(spans=[("interp.cache_sim", 40_000)])
        fresh = result(spans=[("interp.cache_sim", 120_000)])
        regressions, compared, _ = compare_results(base, fresh)
        assert compared and not regressions

    def test_one_sided_metrics_skipped_not_failed(self):
        base = result(bench_means=[("old_bench", 0.01)])
        fresh = result(bench_means=[("new_bench", 9.99)])
        regressions, compared, skipped = compare_results(base, fresh)
        assert not regressions
        assert not compared
        assert skipped == ["bench:new_bench", "bench:old_bench"]

    def test_improvements_never_fail(self):
        base = result(spans=[("codegen.generate", 50_000_000)])
        fresh = result(spans=[("codegen.generate", 5_000_000)])
        regressions, _, _ = compare_results(base, fresh)
        assert not regressions


class TestCli:
    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_pass_exit_zero(self, tmp_path, capsys):
        payload = result(spans=[("codegen.generate", 5_000_000)])
        rc = main(
            [
                self._write(tmp_path, "base.json", payload),
                self._write(tmp_path, "fresh.json", payload),
            ]
        )
        assert rc == 0
        assert "benchmark gate passed" in capsys.readouterr().out

    def test_regression_exit_one(self, tmp_path, capsys):
        base = result(spans=[("codegen.generate", 5_000_000)])
        fresh = result(spans=[("codegen.generate", 50_000_000)])
        rc = main(
            [
                self._write(tmp_path, "base.json", base),
                self._write(tmp_path, "fresh.json", fresh),
            ]
        )
        captured = capsys.readouterr()
        assert rc == 1
        assert "REGRESSION" in captured.out
        assert "FAIL" in captured.err

    def test_missing_file_exit_two(self, tmp_path, capsys):
        rc = main([str(tmp_path / "nope.json"), str(tmp_path / "nada.json")])
        assert rc == 2
        assert "cannot load" in capsys.readouterr().err

    def test_factor_flag_respected(self, tmp_path):
        base = result(spans=[("codegen.generate", 5_000_000)])
        fresh = result(spans=[("codegen.generate", 12_000_000)])
        argv = [
            self._write(tmp_path, "base.json", base),
            self._write(tmp_path, "fresh.json", fresh),
        ]
        assert main(argv) == 1
        assert main(argv + ["--factor", "3.0"]) == 0

    def test_gate_accepts_committed_baseline_format(self, tmp_path, capsys):
        """The real committed BENCH_result.json must be self-comparable."""
        committed = BENCH_DIR.parent / "BENCH_result.json"
        rc = main([str(committed), str(committed)])
        assert rc == 0
        assert "compared" in capsys.readouterr().out
