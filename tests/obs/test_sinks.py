"""Sink behaviour: JSONL round-trip, NullSink transparency, reports."""

from __future__ import annotations

import io
import json

import pytest

from repro import (
    Layout,
    analyze_dependences,
    check_legality,
    generate_code,
    obs,
    skew,
)
from repro.kernels import simplified_cholesky
from repro.obs import format_ns, render_metrics, render_span_tree
from repro.util.errors import ObsError


def _emit_sample_session(*sinks):
    with obs.session(*sinks):
        with obs.span("root", program="p"):
            with obs.span("child", k=2):
                pass
        obs.counter("layer.things", 3)
        obs.gauge("layer.size", 1.5)


class TestJsonlSink:
    def test_round_trip_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        _emit_sample_session(obs.JsonlSink(str(path)))

        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines]  # every line parses
        by_type = {}
        for rec in records:
            by_type.setdefault(rec["type"], []).append(rec)

        spans = by_type["span"]
        # children are flushed before parents
        assert [s["name"] for s in spans] == ["child", "root"]
        child, root = spans
        assert child["parent"] == root["id"]
        assert root["parent"] is None
        assert child["attrs"] == {"k": 2}
        assert root["attrs"] == {"program": "p"}
        assert all(s["dur_ns"] >= 0 for s in spans)
        assert child["start_ns"] >= root["start_ns"]

        assert by_type["counter"] == [
            {"type": "counter", "name": "layer.things", "value": 3}
        ]
        assert by_type["gauge"] == [
            {"type": "gauge", "name": "layer.size", "value": 1.5}
        ]

    def test_file_object_not_closed(self):
        buf = io.StringIO()
        _emit_sample_session(obs.JsonlSink(buf))
        assert not buf.closed  # caller-owned handles stay open
        assert all(json.loads(line) for line in buf.getvalue().splitlines())

    def test_unwritable_path_raises_obs_error(self, tmp_path):
        with pytest.raises(ObsError):
            obs.JsonlSink(str(tmp_path / "missing-dir" / "trace.jsonl"))

    def test_non_json_attrs_stringified(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with obs.session(obs.JsonlSink(str(path))):
            with obs.span("s", obj={1, 2}):
                pass
        rec = json.loads(path.read_text().splitlines()[0])
        assert isinstance(rec["attrs"]["obj"], str)


class TestJsonlFlushAndClose:
    def test_flush_every_record_visible_before_session_end(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = obs.JsonlSink(str(path), flush_every=1)
        with obs.session(sink):
            with obs.span("early"):
                pass
            # the span record must already be durable on disk
            lines = path.read_text().splitlines()
            assert [json.loads(l)["name"] for l in lines] == ["early"]

    def test_pending_records_flushed_by_close(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = obs.JsonlSink(str(path), flush_every=10_000)
        with obs.session(sink):
            with obs.span("buffered"):
                pass
        # session teardown closed the sink, which flushes the tail
        assert sink.closed
        assert any(
            json.loads(l)["name"] == "buffered"
            for l in path.read_text().splitlines()
            if json.loads(l)["type"] == "span"
        )

    def test_close_is_idempotent_and_discards_late_writes(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = obs.JsonlSink(str(path), flush_every=1)
        _emit_sample_session(sink)
        n_lines = len(path.read_text().splitlines())
        sink.close()  # second close: no error
        sink.metrics({"late.counter": 1}, {})  # write after close: dropped
        assert len(path.read_text().splitlines()) == n_lines

    def test_caller_owned_handle_flushed_not_closed(self):
        buf = io.StringIO()
        sink = obs.JsonlSink(buf, flush_every=10_000)
        _emit_sample_session(sink)
        assert sink.closed
        assert not buf.closed
        assert any(json.loads(l) for l in buf.getvalue().splitlines())


class TestNullSinkTransparency:
    def test_pipeline_results_identical(self):
        def run_once():
            program = simplified_cholesky()
            layout = Layout(program)
            deps = analyze_dependences(program, layout=layout)
            t = skew(layout, layout.loop_coords()[-1].var,
                     layout.loop_coords()[0].var, 1)
            report = check_legality(layout, t.matrix, deps)
            g = generate_code(program, t.matrix, deps)
            return report.legal, str(g.program)

        assert obs.current_session() is None
        baseline = run_once()
        with obs.session(obs.NullSink()):
            observed = run_once()
        assert observed == baseline


class TestMemorySinkAndReport:
    def test_render_contains_tree_and_metrics(self):
        sink = obs.MemorySink()
        _emit_sample_session(sink)
        text = sink.render()
        assert "span tree" in text and "metrics" in text
        assert "root" in text and "child" in text
        assert "layer.things" in text and "3" in text
        # nesting is shown by indentation
        root_line = next(l for l in text.splitlines() if l.lstrip().startswith("root"))
        child_line = next(l for l in text.splitlines() if l.lstrip().startswith("child"))
        indent = lambda l: len(l) - len(l.lstrip())
        assert indent(child_line) > indent(root_line)

    def test_render_span_tree_empty(self):
        assert render_span_tree([]) == "(no spans recorded)"

    def test_render_metrics_empty(self):
        assert render_metrics({}, {}) == "(no metrics recorded)"

    def test_format_ns_units(self):
        assert format_ns(12) == "12 ns"
        assert format_ns(4_500) == "4.5 us"
        assert format_ns(4_500_000) == "4.50 ms"
        assert format_ns(4_500_000_000) == "4.50 s"
