"""The typed decision-event primitive: recording, capping, filtering."""

from __future__ import annotations

import io
import json

from repro import obs
from repro.obs import core
from repro.obs.events import VERDICTS, Event, event, events_for


class TestEventPrimitive:
    def test_noop_without_session(self):
        assert obs.current_session() is None
        assert event("legality", "reject", "nope", dep="d") is None

    def test_recorded_in_sequence_order(self, mem):
        event("legality", "reject", "first")
        event("tune", "accept", "second")
        sess = obs.current_session()
        assert [ev.reason for ev in sess.events] == ["first", "second"]
        assert sess.events[0].seq < sess.events[1].seq

    def test_streamed_to_sinks_at_emit_time(self, mem):
        # sinks see the event immediately, not only at flush
        event("fuzz", "accept", "ok", index=0)
        assert [ev.reason for ev in mem.events] == ["ok"]

    def test_attrs_preserved(self, mem):
        ev = event("legality", "reject", "violated", dep="flow S1->S2", sign="neg")
        assert ev.attrs == {"dep": "flow S1->S2", "sign": "neg"}

    def test_parameter_names_are_positional_only(self, mem):
        # attrs may reuse the parameter names without colliding
        ev = event("fuzz", "accept", "r", kind="perfect", verdict="x", reason="y")
        assert ev.kind == "fuzz" and ev.verdict == "accept" and ev.reason == "r"
        assert ev.attrs == {"kind": "perfect", "verdict": "x", "reason": "y"}

    def test_verdict_vocabulary(self):
        assert VERDICTS == ("accept", "reject", "measure", "info")


class TestEventRecord:
    def test_to_dict_shape(self, mem):
        ev = event("vectorize", "reject", "non-unit step", loop="I")
        rec = ev.to_dict()
        assert rec["type"] == "event"
        assert rec["kind"] == "vectorize"
        assert rec["verdict"] == "reject"
        assert rec["reason"] == "non-unit step"
        assert rec["attrs"] == {"loop": "I"}
        json.dumps(rec)  # JSONL-safe

    def test_describe_and_str(self):
        ev = Event(1, "legality", "reject", "bad projection", {"dep": "d1"})
        line = ev.describe()
        assert line.startswith("reject")
        assert "bad projection" in line and "dep=d1" in line
        assert str(ev).startswith("legality:")


class TestEventsFor:
    def test_filters_by_kind_and_verdict(self, mem):
        event("legality", "reject", "a")
        event("legality", "accept", "b")
        event("tune", "reject", "c")
        evs = obs.current_session().events
        assert [e.reason for e in events_for(evs, "legality")] == ["a", "b"]
        assert [e.reason for e in events_for(evs, verdict="reject")] == ["a", "c"]
        assert [e.reason for e in events_for(evs, "tune", "reject")] == ["c"]

    def test_memory_sink_helper(self, mem):
        event("fuzz", "accept", "x")
        event("fuzz", "reject", "y")
        assert [e.reason for e in mem.events_for("fuzz", "reject")] == ["y"]


class TestEventCap:
    def test_cap_drops_and_counts(self, mem, monkeypatch):
        monkeypatch.setattr(core, "MAX_EVENTS", 3)
        for i in range(5):
            event("fuzz", "info", f"e{i}")
        sess = obs.current_session()
        assert len(sess.events) == 3
        assert sess.counters["obs.events_dropped"] == 2
        # sinks still receive every event (the stream is not capped)
        assert len(mem.events) == 5


class TestJsonlEventLines:
    def test_events_written_as_jsonl(self):
        buf = io.StringIO()
        with obs.session(obs.JsonlSink(buf, flush_every=1)):
            event("tune", "measure", "median of 3 rounds", seconds="0.01")
        recs = [json.loads(line) for line in buf.getvalue().splitlines()]
        evs = [r for r in recs if r["type"] == "event"]
        assert len(evs) == 1
        assert evs[0]["kind"] == "tune"
        assert evs[0]["attrs"] == {"seconds": "0.01"}
