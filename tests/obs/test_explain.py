"""The ``repro explain`` subcommand: per-phase decision narratives."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"
QUICKSTART = str(EXAMPLES / "quickstart.loop")
CHOLESKY = str(EXAMPLES / "cholesky.loop")


class TestExplainLegality:
    def test_illegal_spec_names_dep_and_projection(self, capsys):
        rc = main(
            ["explain", QUICKSTART, "--phase", "legality",
             "--spec", "permute(I,J)"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "ILLEGAL" in out
        assert "reject" in out
        assert "Theorem 2" in out
        assert "dep=" in out and "projection=" in out

    def test_legal_spec_reports_legal(self, capsys):
        rc = main(
            ["explain", QUICKSTART, "--phase", "legality",
             "--spec", "skew(J,I,1)"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "verdict: LEGAL" in out
        assert "reject" not in out

    def test_missing_spec_is_an_error(self, capsys):
        rc = main(["explain", QUICKSTART, "--phase", "legality"])
        assert rc != 0
        assert "--spec" in capsys.readouterr().err


class TestExplainVectorize:
    def test_per_loop_verdicts(self, capsys):
        rc = main(["explain", CHOLESKY, "--phase", "vectorize"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "2 loop(s) vectorized" in out
        assert "loop=K" in out and "carries dependence" in out
        assert "NumPy slice assignment" in out


class TestExplainComplete:
    def test_completion_narrative(self, capsys):
        rc = main(["explain", QUICKSTART, "--phase", "complete", "--lead", "J"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "lead: J" in out
        assert "verdict:" in out

    def test_missing_lead_is_an_error(self, capsys):
        rc = main(["explain", QUICKSTART, "--phase", "complete"])
        assert rc != 0
        assert "--lead" in capsys.readouterr().err


class TestExplainTune:
    @pytest.fixture(scope="class")
    def cache_dir(self, tmp_path_factory):
        cache = str(tmp_path_factory.mktemp("tune_cache"))
        assert main(
            ["tune", QUICKSTART, "-p", "N=16", "--beam", "2", "--depth", "1",
             "--top-k", "2", "--backend", "source", "--cache-dir", cache]
        ) == 0
        return cache

    def test_rank_table_and_tau(self, capsys, cache_dir):
        capsys.readouterr()
        rc = main(
            ["explain", QUICKSTART, "--phase", "tune", "-p", "N=16",
             "--cache-dir", cache_dir]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "winner:" in out
        assert "cost rank" in out and "measured rank" in out
        assert "Kendall tau" in out

    def test_json_payload_shape(self, capsys, cache_dir):
        capsys.readouterr()
        rc = main(
            ["explain", QUICKSTART, "--phase", "tune", "-p", "N=16",
             "--cache-dir", cache_dir, "--json"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        entry = payload["phases"]["tune"]["entry"]
        assert entry["winner"]["description"]
        for cand in entry["ranking"]["candidates"]:
            assert {"cost_rank", "measured_rank", "score", "seconds"} <= set(cand)

    def test_cold_cache_is_graceful(self, capsys, tmp_path):
        rc = main(
            ["explain", QUICKSTART, "--phase", "tune", "-p", "N=16",
             "--cache-dir", str(tmp_path / "empty")]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "run `repro tune` first" in out


class TestExplainDefaults:
    def test_no_phase_runs_every_runnable_phase(self, capsys):
        # without --spec/--lead only vectorize and tune can run
        rc = main(["explain", QUICKSTART])
        out = capsys.readouterr().out
        assert rc == 0
        assert "--- vectorize ---" in out
        assert "--- tune ---" in out
        assert "--- legality ---" not in out
        assert "--- complete ---" not in out

    def test_json_events_round_trip(self, capsys):
        rc = main(
            ["explain", QUICKSTART, "--phase", "legality",
             "--spec", "permute(I,J)", "--json"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        events = payload["phases"]["legality"]["events"]
        rejects = [e for e in events if e["verdict"] == "reject"]
        assert rejects
        assert all(e["type"] == "event" for e in events)
        assert all("dep" in e["attrs"] for e in rejects)
