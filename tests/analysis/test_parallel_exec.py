"""The --jobs fan-out: helper semantics, bit-identical parallel
dependence analysis, threaded loop-order search, and CLI plumbing."""

import os
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.analysis import search_loop_orders
from repro.analysis.parallel_exec import (
    capture_counters, chunk_round_robin, map_in_processes, map_in_threads,
    merge_counters, resolve_jobs,
)
from repro.cli import main
from repro.dependence import analyze_dependences
from repro.interp.executor import ArrayStore, execute
from repro.kernels import cholesky, simplified_cholesky


# -- helpers ----------------------------------------------------------------


def _square(x):  # top-level: must be picklable for the process pool
    return x * x


class TestResolveJobs:
    def test_none_is_serial(self):
        assert resolve_jobs(None) == 1

    def test_explicit_count(self):
        assert resolve_jobs(3) == 3

    def test_zero_means_all_cpus(self):
        assert resolve_jobs(0) == max(1, os.cpu_count() or 1)
        assert resolve_jobs(-2) == max(1, os.cpu_count() or 1)


class TestChunkRoundRobin:
    def test_partitions_everything_once(self):
        chunks = chunk_round_robin(10, 3)
        flat = sorted(i for c in chunks for i in c)
        assert flat == list(range(10))

    def test_drops_empty_hands(self):
        assert chunk_round_robin(2, 5) == [[0], [1]]

    def test_zero_tasks(self):
        assert chunk_round_robin(0, 4) == []


class TestMaps:
    def test_processes_preserve_order(self):
        assert map_in_processes(_square, list(range(20)), jobs=2) == [
            i * i for i in range(20)
        ]

    def test_threads_preserve_order(self):
        assert map_in_threads(_square, list(range(20)), jobs=4) == [
            i * i for i in range(20)
        ]

    def test_small_input_stays_serial(self):
        assert map_in_processes(_square, [3], jobs=8) == [9]


class TestCaptureCounters:
    def test_without_outer_session(self):
        assert obs.current_session() is None
        with capture_counters() as cap:
            obs.counter("t.example", 3)
        assert cap.delta == {"t.example": 3}
        assert obs.current_session() is None

    def test_with_outer_session_reports_delta_only(self):
        with obs.session() as sess:
            obs.counter("t.example", 5)
            with capture_counters() as cap:
                obs.counter("t.example", 2)
            assert cap.delta == {"t.example": 2}
            merge_counters(cap.delta)
            assert sess.counters["t.example"] == 9  # 5 + 2 + merged 2


# -- dependence analysis fan-out -------------------------------------------


class TestParallelDependences:
    @pytest.mark.parametrize("kernel", [simplified_cholesky, cholesky])
    def test_bit_identical_to_serial(self, kernel):
        program = kernel()
        serial = analyze_dependences(program)
        parallel = analyze_dependences(program, jobs=2)
        assert parallel.to_str() == serial.to_str()
        assert parallel.summary() == serial.summary()
        assert [str(d) for d in parallel] == [str(d) for d in serial]

    def test_worker_counters_are_merged(self):
        program = cholesky()
        with obs.session() as s1:
            analyze_dependences(program)
        with obs.session() as s2:
            analyze_dependences(program, jobs=2)
        for name in ("dependence.pairs_tested", "dependence.cases_tested",
                     "dependence.vectors"):
            assert s2.counters.get(name) == s1.counters.get(name), name


# -- threaded search --------------------------------------------------------


class TestThreadedSearch:
    def test_ranking_matches_serial(self):
        program = simplified_cholesky()
        deps = analyze_dependences(program)
        serial = search_loop_orders(program, {"N": 8}, deps=deps)
        threaded = search_loop_orders(program, {"N": 8}, deps=deps, jobs=2)
        assert [(r.lead_var, r.misses, r.accesses) for r in threaded] == [
            (r.lead_var, r.misses, r.accesses) for r in serial
        ]
        assert [str(r.program) for r in threaded] == [str(r.program) for r in serial]

    def test_base_snapshot_not_mutated(self):
        """The shared initial-state snapshot must survive a search
        untouched — execute() copies it into a fresh store per variant."""
        program = simplified_cholesky()
        store = ArrayStore(program, {"N": 8})
        base = store.snapshot()
        frozen = {k: v.copy() for k, v in base.items()}
        for arr in base.values():
            arr.setflags(write=False)
        out, _ = execute(program, {"N": 8}, arrays=base)
        for name in base:
            np.testing.assert_array_equal(base[name], frozen[name])
        # the run itself must have written *somewhere* (to its own copy)
        assert any(
            not np.array_equal(out.arrays[n], base[n]) for n in base
        )

    def test_readonly_base_rejects_writes(self):
        program = simplified_cholesky()
        base = ArrayStore(program, {"N": 8}).snapshot()
        for arr in base.values():
            arr.setflags(write=False)
        name = next(iter(base))
        with pytest.raises(ValueError):
            base[name][(0,) * base[name].ndim] = 1.0


# -- CLI plumbing -----------------------------------------------------------


QUICKSTART = str(Path(__file__).resolve().parents[2] / "examples" / "quickstart.loop")


class TestCliJobs:
    def test_deps_jobs_flag(self, capsys):
        assert main(["deps", QUICKSTART, "--jobs", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert main(["deps", QUICKSTART]) == 0
        assert capsys.readouterr().out == parallel_out

    def test_report_jobs_flag(self, capsys):
        assert main(["report", QUICKSTART, "-j", "2"]) == 0
        out = capsys.readouterr().out
        assert "loop-order search" in out
        assert "fm.cache_hits" in out
