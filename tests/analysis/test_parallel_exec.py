"""The --jobs fan-out: helper semantics, bit-identical parallel
dependence analysis, threaded loop-order search, and CLI plumbing."""

import os
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.analysis import search_loop_orders
from repro.analysis.parallel_exec import (
    capture_counters, chunk_round_robin, map_in_processes, map_in_threads,
    merge_counters, merge_metrics, resolve_jobs,
)
from repro.cli import main
from repro.dependence import analyze_dependences
from repro.interp.executor import ArrayStore, execute
from repro.kernels import cholesky, simplified_cholesky


# -- helpers ----------------------------------------------------------------


def _square(x):  # top-level: must be picklable for the process pool
    return x * x


class TestResolveJobs:
    def test_none_is_serial(self):
        assert resolve_jobs(None) == 1

    def test_explicit_count(self):
        assert resolve_jobs(3) == 3

    def test_zero_means_all_cpus(self):
        assert resolve_jobs(0) == max(1, os.cpu_count() or 1)
        assert resolve_jobs(-2) == max(1, os.cpu_count() or 1)


class TestChunkRoundRobin:
    def test_partitions_everything_once(self):
        chunks = chunk_round_robin(10, 3)
        flat = sorted(i for c in chunks for i in c)
        assert flat == list(range(10))

    def test_drops_empty_hands(self):
        assert chunk_round_robin(2, 5) == [[0], [1]]

    def test_zero_tasks(self):
        assert chunk_round_robin(0, 4) == []


class TestMaps:
    def test_processes_preserve_order(self):
        assert map_in_processes(_square, list(range(20)), jobs=2) == [
            i * i for i in range(20)
        ]

    def test_threads_preserve_order(self):
        assert map_in_threads(_square, list(range(20)), jobs=4) == [
            i * i for i in range(20)
        ]

    def test_small_input_stays_serial(self):
        assert map_in_processes(_square, [3], jobs=8) == [9]


class TestCaptureCounters:
    def test_without_outer_session(self):
        assert obs.current_session() is None
        with capture_counters() as cap:
            obs.counter("t.example", 3)
        assert cap.delta == {"t.example": 3}
        assert obs.current_session() is None

    def test_with_outer_session_reports_delta_only(self):
        with obs.session() as sess:
            obs.counter("t.example", 5)
            with capture_counters() as cap:
                obs.counter("t.example", 2)
            assert cap.delta == {"t.example": 2}
            merge_counters(cap.delta)
            assert sess.counters["t.example"] == 9  # 5 + 2 + merged 2


def _emit_fixed_metrics(task):
    """Process-pool worker with a deterministic metric footprint: the
    values depend only on the task index, never on timing."""
    index, reps = task
    with capture_counters() as cap:
        for k in range(reps):
            obs.counter("t.work", 1)
            obs.histogram("t.latency_ns", 100 * (index + 1) + k)
        obs.gauge("t.size", reps)
    return index, cap.metrics


class TestCaptureMetrics:
    def test_metrics_payload_bundles_all_three(self):
        with obs.session():
            with capture_counters() as cap:
                obs.counter("t.c", 2)
                obs.gauge("t.g", 7.5)
                obs.histogram("t.h", 64)
        assert cap.metrics["counters"] == {"t.c": 2}
        assert cap.metrics["gauges"] == {"t.g": 7.5}
        h = cap.metrics["histograms"]["t.h"]
        assert h["count"] == 1 and h["buckets"] == {"7": 1}

    def test_histogram_delta_excludes_prior_samples(self):
        with obs.session() as sess:
            obs.histogram("t.h", 1)
            with capture_counters() as cap:
                obs.histogram("t.h", 1)
                obs.histogram("t.h", 1024)
            delta = cap.metrics["histograms"]["t.h"]
            assert delta["count"] == 2
            assert delta["buckets"] == {"1": 1, "11": 1}
            assert sess.histograms["t.h"].count == 3

    def test_unchanged_metrics_not_shipped(self):
        with obs.session():
            obs.counter("t.before", 1)
            obs.gauge("t.g", 5)
            obs.histogram("t.h", 9)
            with capture_counters() as cap:
                obs.gauge("t.g", 5)  # rewritten with the same value
        assert cap.metrics == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_merge_metrics_reconstructs_serial_state(self):
        # the acceptance property: run the same deterministic workload
        # serially and via worker payload merging; every counter, gauge
        # and histogram bucket must come out identical
        tasks = [(i, 3) for i in range(6)]

        with obs.session() as serial:
            for t in tasks:
                _emit_fixed_metrics(t)
        with obs.session() as merged:
            for _, metrics in map_in_processes(
                _emit_fixed_metrics, tasks, jobs=2
            ):
                merge_metrics(metrics)

        assert merged.counters == serial.counters
        assert merged.gauges == serial.gauges
        assert set(merged.histograms) == set(serial.histograms)
        for name, h in serial.histograms.items():
            assert merged.histograms[name] == h, name
            assert merged.histograms[name].to_dict() == h.to_dict(), name

    def test_merge_metrics_noop_without_session(self):
        assert obs.current_session() is None
        merge_metrics({"counters": {"x": 1}, "gauges": {"g": 2},
                       "histograms": {"h": {"count": 1, "total": 5, "max": 5,
                                            "buckets": {"3": 1}}}})
        assert obs.snapshot() == ({}, {})


class TestFuzzJobsMetricsParity:
    def test_serial_and_parallel_fuzz_report_identical_events(self):
        from repro.fuzz.runner import fuzz_run

        with obs.session() as s1:
            fuzz_run(8, seed=3, corpus_dir=None)
        with obs.session() as s2:
            fuzz_run(8, seed=3, corpus_dir=None, jobs=2)

        ev1 = [(e.kind, e.verdict, e.reason, e.attrs) for e in s1.events
               if e.kind == "fuzz"]
        ev2 = [(e.kind, e.verdict, e.reason, e.attrs) for e in s2.events
               if e.kind == "fuzz"]
        assert ev1 == ev2
        # the cache-independent pipeline counters match too (fm.* hit/miss
        # splits legitimately differ: workers start with cold memo caches)
        deterministic = ("dependence.", "legality.", "completion.",
                         "codegen.", "interp.")

        def picked(counters):
            return {k: v for k, v in counters.items()
                    if k.startswith(deterministic)}

        assert picked(s2.counters) == picked(s1.counters)


# -- dependence analysis fan-out -------------------------------------------


class TestParallelDependences:
    @pytest.mark.parametrize("kernel", [simplified_cholesky, cholesky])
    def test_bit_identical_to_serial(self, kernel):
        program = kernel()
        serial = analyze_dependences(program)
        parallel = analyze_dependences(program, jobs=2)
        assert parallel.to_str() == serial.to_str()
        assert parallel.summary() == serial.summary()
        assert [str(d) for d in parallel] == [str(d) for d in serial]

    def test_worker_counters_are_merged(self):
        program = cholesky()
        with obs.session() as s1:
            analyze_dependences(program)
        with obs.session() as s2:
            analyze_dependences(program, jobs=2)
        for name in ("dependence.pairs_tested", "dependence.cases_tested",
                     "dependence.vectors"):
            assert s2.counters.get(name) == s1.counters.get(name), name


# -- threaded search --------------------------------------------------------


class TestThreadedSearch:
    def test_ranking_matches_serial(self):
        program = simplified_cholesky()
        deps = analyze_dependences(program)
        serial = search_loop_orders(program, {"N": 8}, deps=deps)
        threaded = search_loop_orders(program, {"N": 8}, deps=deps, jobs=2)
        assert [(r.lead_var, r.misses, r.accesses) for r in threaded] == [
            (r.lead_var, r.misses, r.accesses) for r in serial
        ]
        assert [str(r.program) for r in threaded] == [str(r.program) for r in serial]

    def test_base_snapshot_not_mutated(self):
        """The shared initial-state snapshot must survive a search
        untouched — execute() copies it into a fresh store per variant."""
        program = simplified_cholesky()
        store = ArrayStore(program, {"N": 8})
        base = store.snapshot()
        frozen = {k: v.copy() for k, v in base.items()}
        for arr in base.values():
            arr.setflags(write=False)
        out, _ = execute(program, {"N": 8}, arrays=base)
        for name in base:
            np.testing.assert_array_equal(base[name], frozen[name])
        # the run itself must have written *somewhere* (to its own copy)
        assert any(
            not np.array_equal(out.arrays[n], base[n]) for n in base
        )

    def test_readonly_base_rejects_writes(self):
        program = simplified_cholesky()
        base = ArrayStore(program, {"N": 8}).snapshot()
        for arr in base.values():
            arr.setflags(write=False)
        name = next(iter(base))
        with pytest.raises(ValueError):
            base[name][(0,) * base[name].ndim] = 1.0


# -- CLI plumbing -----------------------------------------------------------


QUICKSTART = str(Path(__file__).resolve().parents[2] / "examples" / "quickstart.loop")


class TestCliJobs:
    def test_deps_jobs_flag(self, capsys):
        assert main(["deps", QUICKSTART, "--jobs", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert main(["deps", QUICKSTART]) == 0
        assert capsys.readouterr().out == parallel_out

    def test_report_jobs_flag(self, capsys):
        assert main(["report", QUICKSTART, "-j", "2"]) == 0
        out = capsys.readouterr().out
        assert "loop-order search" in out
        assert "fm.cache_hits" in out
