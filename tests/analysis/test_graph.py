"""Dependence graphs and Allen–Kennedy maximal distribution."""

import networkx as nx

from repro.analysis import dependence_graph, distribution_plan, maximal_distribution
from repro.dependence import analyze_dependences
from repro.interp import ArrayStore, execute, outputs_close
from repro.ir import Loop, parse_program, program_to_str
from repro.kernels import jacobi_1d

PIPELINE = """
param N
real A(0:N+1), B(0:N+1), C(0:N+1)
do I = 1..N
  S1: A(I) = f(I)
  S2: B(I) = A(I) * 2
  S3: C(I) = B(I) + A(I)
enddo
"""


def equivalent(p, q, params):
    init = ArrayStore(p, params).snapshot()
    s0, _ = execute(p, params, arrays=init)
    s1, _ = execute(q, params, arrays=init)
    return outputs_close(s0.snapshot(), s1.snapshot())


class TestDependenceGraph:
    def test_pipeline_is_a_dag(self):
        p = parse_program(PIPELINE)
        g = dependence_graph(analyze_dependences(p), at_loop=(0,))
        assert set(g.nodes) == {"S1", "S2", "S3"}
        assert nx.is_directed_acyclic_graph(g)
        assert g.has_edge("S1", "S2") and g.has_edge("S2", "S3")

    def test_cholesky_is_one_scc(self, simp_chol):
        g = dependence_graph(analyze_dependences(simp_chol), at_loop=(0,))
        sccs = list(nx.strongly_connected_components(g))
        assert any({"S1", "S2"} <= s for s in sccs)

    def test_outer_carried_edges_dropped(self):
        # S2->S1 back edge carried by T: invisible at the inner loop
        p = parse_program(
            "param N\nreal A(0:N+1), B(0:N+1)\n"
            "do T = 1..N\n"
            "  do I = 1..N\n"
            "    S1: A(I) = B(I) + f(T)\n"
            "    S2: B(I) = A(I) * 2\n"
            "  enddo\n"
            "enddo"
        )
        deps = analyze_dependences(p)
        g_inner = dependence_graph(deps, at_loop=(0, 0))
        assert not g_inner.has_edge("S2", "S1")
        g_outer = dependence_graph(deps, at_loop=(0,))
        assert g_outer.has_edge("S2", "S1")

    def test_full_graph_has_all_statements(self, chol):
        g = dependence_graph(analyze_dependences(chol))
        assert set(g.nodes) == {"S1", "S2", "S3"}


class TestDistributionPlan:
    def test_pipeline_fully_splittable(self):
        p = parse_program(PIPELINE)
        plan = distribution_plan(p)
        assert plan[(0,)] == [[0], [1], [2]]

    def test_cholesky_unsplittable(self, chol):
        plan = distribution_plan(chol)
        assert plan[(0,)] == [[0, 1, 2]]

    def test_lu_unsplittable(self, lu):
        plan = distribution_plan(lu)
        assert len(plan[(0,)]) == 1

    def test_jacobi_time_loop_unsplittable(self):
        p = jacobi_1d()
        plan = distribution_plan(p)
        assert len(plan[(0,)]) == 1  # B feeds back into A across sweeps


class TestMaximalDistribution:
    def test_factorizations_unchanged(self, simp_chol, chol, lu):
        for p in (simp_chol, chol, lu):
            out = maximal_distribution(p)
            assert program_to_str(out, header=False) == program_to_str(p, header=False)

    def test_pipeline_fully_distributed(self):
        p = parse_program(PIPELINE)
        out = maximal_distribution(p)
        assert len(out.body) == 3
        assert all(isinstance(n, Loop) and len(n.body) == 1 for n in out.body)
        assert equivalent(p, out, {"N": 6})

    def test_mixed_recurrence_splits(self):
        p = parse_program(
            "param N\nreal A(0:N+1), B(0:N+1)\n"
            "do I = 1..N\n"
            "  S1: A(I) = A(I-1) + f(I)\n"
            "  S2: B(I) = A(I) * 2\n"
            "enddo"
        )
        out = maximal_distribution(p)
        assert len(out.body) == 2
        assert equivalent(p, out, {"N": 6})

    def test_nested_distribution(self):
        p = parse_program(
            "param N\nreal A(0:N+1,0:N+1), B(0:N+1,0:N+1)\n"
            "do T = 1..3\n"
            "  do I = 1..N\n"
            "    S1: A(T,I) = f(T,I)\n"
            "    S2: B(T,I) = A(T,I) + 1\n"
            "  enddo\n"
            "enddo"
        )
        out = maximal_distribution(p)
        # both levels split: the outer T loop has independent bodies too
        assert equivalent(p, out, {"N": 5})
        total_loops = len(out.all_loops())
        assert total_loops > len(p.all_loops())

    def test_interleaved_scc_blocked(self):
        # S1 -> S2 -> S1 cycle at the loop level: no split
        p = parse_program(
            "param N\nreal A(0:N+1), B(0:N+1)\n"
            "do I = 1..N\n"
            "  S1: A(I) = B(I-1) + 1\n"
            "  S2: B(I) = A(I) * 2\n"
            "enddo"
        )
        out = maximal_distribution(p)
        assert program_to_str(out, header=False) == program_to_str(p, header=False)
