"""Parallelism analysis tests."""


from repro.analysis import outer_parallel_unit_rows, parallel_loops
from repro.dependence import analyze_dependences
from repro.instance import Layout
from repro.ir import parse_program
from repro.linalg import IntMatrix


class TestParallelLoops:
    def test_independent_loop_is_parallel(self):
        p = parse_program("param N\nreal A(N)\ndo I = 1..N\n S1: A(I) = f(I)\nenddo")
        lay = Layout(p)
        deps = analyze_dependences(p)
        marks = parallel_loops(lay, IntMatrix.identity(1), deps)
        assert len(marks) == 1 and marks[0].is_parallel

    def test_recurrence_not_parallel(self):
        p = parse_program("param N\nreal A(0:N)\ndo I = 1..N\n S1: A(I) = A(I-1)\nenddo")
        lay = Layout(p)
        deps = analyze_dependences(p)
        marks = parallel_loops(lay, IntMatrix.identity(1), deps)
        assert not marks[0].is_parallel
        assert "S1->S1" in marks[0].carried

    def test_inner_loop_of_simplified_cholesky_parallel(self, simp_chol, simp_chol_layout):
        deps = analyze_dependences(simp_chol)
        marks = parallel_loops(simp_chol_layout, IntMatrix.identity(4), deps)
        by_var = {m.var: m for m in marks}
        assert not by_var["I"].is_parallel  # carries everything
        assert by_var["J"].is_parallel      # scaling updates independent

    def test_cholesky_update_loops(self, chol, chol_layout):
        deps = analyze_dependences(chol)
        marks = parallel_loops(chol_layout, IntMatrix.identity(7), deps)
        by_var = {m.var: m for m in marks}
        assert not by_var["K"].is_parallel
        assert by_var["I"].is_parallel  # column scaling is DOALL
        # the J/L update loops are DOALL within a K iteration
        assert by_var["J"].is_parallel
        assert by_var["L"].is_parallel


class TestOuterParallelRows:
    def test_perfect_parallel_dimension(self):
        p = parse_program(
            "param N\nreal A(0:N+1,0:N+1)\n"
            "do I = 1..N\n do J = 1..N\n  S1: A(I,J) = A(I,J-1)\n enddo\nenddo"
        )
        lay = Layout(p)
        deps = analyze_dependences(p)
        rows = outer_parallel_unit_rows(lay, deps)
        assert [c.var for c in rows] == ["I"]

    def test_none_when_all_carried(self):
        p = parse_program(
            "param N\nreal A(0:N+1,0:N+1)\n"
            "do I = 1..N\n do J = 1..N\n  S1: A(I,J) = A(I-1,J-1)\n enddo\nenddo"
        )
        lay = Layout(p)
        deps = analyze_dependences(p)
        assert outer_parallel_unit_rows(lay, deps) == []
