"""Locality metric tests."""

import numpy as np

from repro.analysis import locality_score, reuse_distances, reuse_histogram
from repro.interp import execute
from repro.ir import parse_program


def run(src, n):
    p = parse_program(src)
    store, t = execute(p, {"N": n}, trace=True)
    return store, t


class TestReuseDistances:
    def test_streaming_all_cold_per_line(self):
        store, t = run("param N\nreal A(N)\ndo I = 1..N\n S1: A(I) = 1.0\nenddo", 64)
        d = reuse_distances(t, store)
        cold = (d == -1).sum()
        assert cold == 8  # 64 doubles / 8 per line
        # spatial reuse within a line has distance 0
        assert np.all(d[d >= 0] == 0)

    def test_repeat_access_distance_zero(self):
        store, t = run(
            "param N\nreal A(N)\ndo I = 1..N\n S1: A(1) = A(1) + 1\nenddo", 16
        )
        d = reuse_distances(t, store)
        assert (d == -1).sum() == 1
        assert np.all(d[1:] == 0)

    def test_alternating_two_lines(self):
        src = (
            "param N\nreal A(N), B(N)\n"
            "do I = 1..N\n S1: A(1) = B(1) + A(1)\nenddo"
        )
        store, t = run(src, 8)
        d = reuse_distances(t, store)
        # after warmup, every access alternates between two lines: dist 1
        assert set(d[3:].tolist()) <= {0, 1}

    def test_histogram_buckets(self):
        store, t = run("param N\nreal A(N)\ndo I = 1..N\n S1: A(I) = 1.0\nenddo", 64)
        h = reuse_histogram(reuse_distances(t, store))
        assert h["cold"] == 8
        assert sum(h.values()) >= 64

    def test_locality_score_bounds(self):
        store, t = run("param N\nreal A(N)\ndo I = 1..N\n S1: A(I) = 1.0\nenddo", 64)
        s = locality_score(reuse_distances(t, store))
        assert 0.0 <= s <= 1.0
        assert s == 56 / 64  # all non-cold accesses hit

    def test_row_vs_column_order(self):
        row = (
            "param N\nreal A(N,N)\n"
            "do I = 1..N\n do J = 1..N\n  S1: A(I,J) = 1.0\n enddo\nenddo"
        )
        col = (
            "param N\nreal A(N,N)\n"
            "do J = 1..N\n do I = 1..N\n  S1: A(I,J) = 1.0\n enddo\nenddo"
        )
        scores = {}
        for name, src in (("row", row), ("col", col)):
            store, t = run(src, 48)
            scores[name] = locality_score(reuse_distances(t, store), capacity_lines=16)
        assert scores["row"] > scores["col"]
