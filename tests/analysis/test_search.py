"""Transformation search (completion + codegen + cache ranking)."""


from repro.analysis import search_loop_orders
from repro.interp import CacheConfig
from repro.kernels import cholesky, simplified_cholesky


class TestSearchLoopOrders:
    def test_cholesky_finds_both_families(self):
        results = search_loop_orders(cholesky(), {"N": 16})
        leads = {r.lead_var for r in results}
        assert leads == {"K", "L"}

    def test_ranked_by_misses(self):
        results = search_loop_orders(cholesky(), {"N": 16}, verify=False)
        misses = [r.misses for r in results]
        assert misses == sorted(misses)

    def test_left_looking_wins_beyond_cache_capacity(self):
        results = search_loop_orders(
            cholesky(), {"N": 44}, verify=False,
            cache=CacheConfig(size_bytes=4 * 1024, line_bytes=64, ways=2),
        )
        assert results[0].lead_var == "L"
        assert results[0].misses < results[-1].misses

    def test_verification_enabled_by_default(self):
        results = search_loop_orders(simplified_cholesky(), {"N": 10})
        assert results  # at least the original order survives
        for r in results:
            assert r.accesses > 0

    def test_restricted_leads(self):
        results = search_loop_orders(cholesky(), {"N": 10}, leads=["K"])
        assert [r.lead_var for r in results] == ["K"]

    def test_illegal_leads_silently_skipped(self):
        results = search_loop_orders(cholesky(), {"N": 10}, leads=["J", "I"])
        assert results == []

    def test_result_str(self):
        results = search_loop_orders(simplified_cholesky(), {"N": 8})
        assert "misses" in str(results[0])
