"""Property tests: statement reordering and structure recovery are
mutually inverse on random programs."""


from hypothesis import given, settings, strategies as st

from repro.instance import Layout
from repro.ir import program_to_str
from repro.kernels import random_program
from repro.legality import recover_structure
from repro.transform import statement_reorder


def multi_child_nodes(layout):
    """Paths of nodes with >= 2 children."""
    from collections import defaultdict

    kids = defaultdict(set)
    for label in layout.statement_labels():
        p = layout.statement_path(label)
        for d in range(len(p)):
            kids[p[:d]].add(p[d])
    return [(path, max(ch) + 1) for path, ch in kids.items() if len(ch) >= 2]


@given(st.integers(0, 80), st.randoms(use_true_random=False))
@settings(max_examples=40, deadline=None)
def test_reorder_recover_roundtrip(seed, rng):
    program = random_program(seed)
    layout = Layout(program)
    sites = multi_child_nodes(layout)
    if not sites:
        return
    path, c = rng.choice(sites)
    order = list(range(c))
    rng.shuffle(order)
    t, reordered = statement_reorder(layout, path, order)
    st_ = recover_structure(layout, t.matrix)
    # the recovered skeleton must equal the direct reordering
    assert program_to_str(st_.skeleton, header=False) == program_to_str(
        reordered, header=False
    )
    assert st_.child_order[path] == order


@given(st.integers(0, 80), st.randoms(use_true_random=False))
@settings(max_examples=40, deadline=None)
def test_reorder_is_invertible(seed, rng):
    program = random_program(seed)
    layout = Layout(program)
    sites = multi_child_nodes(layout)
    if not sites:
        return
    path, c = rng.choice(sites)
    order = list(range(c))
    rng.shuffle(order)
    t, reordered = statement_reorder(layout, path, order)
    # apply the inverse permutation on the new program
    inverse = [0] * c
    for new, old in enumerate(order):
        inverse[old] = new
    lay2 = Layout(reordered)
    t2, back = statement_reorder(lay2, path, inverse)
    assert program_to_str(back, header=False) == program_to_str(program, header=False)
    # and the matrices compose to the identity
    from repro.linalg import IntMatrix

    assert t2.matrix @ t.matrix == IntMatrix.identity(layout.dimension)


@given(st.integers(0, 80))
@settings(max_examples=30, deadline=None)
def test_statement_order_preserved_under_identity(seed):
    program = random_program(seed)
    layout = Layout(program)
    from repro.linalg import IntMatrix

    st_ = recover_structure(layout, IntMatrix.identity(layout.dimension))
    assert [s.label for s in st_.skeleton.statements()] == [
        s.label for s in program.statements()
    ]
