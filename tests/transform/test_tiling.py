"""Strip-mining and offset fusion — exactness, legality, schedules.

The contract under test: ``strip_mine`` is an order-preserving bijection
of the iteration space (always legal, outputs bit-identical for every
tile size, dividing or not); ``fuse`` is the inverse of distribution
generalized to a constant header offset, admitted iff distributing the
fused loop back is Theorem-2 legal; and ``parse_schedule`` composes
structural prefixes with linear suffixes, exposing the instance-space
pullback the equivalence oracles need.
"""

import numpy as np
import pytest

from repro import obs
from repro.backend import BACKENDS
from repro.backend import run as backend_run
from repro.codegen import generate_code
from repro.dependence import analyze_dependences
from repro.interp import ArrayStore, check_equivalence, execute, outputs_close
from repro.ir import Loop, parse_program
from repro.kernels import cholesky
from repro.transform import (
    TILE_LADDER, fuse, fuse_legal, fuse_site_offset, parse_schedule,
    strip_mine, tiling_matrix,
)
from repro.transform.tiling import loop_path_by_var
from repro.util.errors import ReproError, TransformError

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - optional dev dependency
    HAVE_HYPOTHESIS = False


def _two_loop_program(offset: int, flip: bool = False) -> str:
    """Producer loop over I=1..N, consumer loop shifted by ``offset``.

    With ``flip`` the consumer updates the array the producer reads
    *behind* the current iteration, making the fusion illegal for
    offset != 0 cases that move the update before the use.
    """
    lo, hi = 1 + offset, f"N + {offset}" if offset >= 0 else f"N - {-offset}"
    consumer = (
        f"  S2: A(J) = (A(J) * 2.0)\n" if flip
        else f"  S2: B(J) = (A(J - {offset}) + 1.0)\n"
    )
    return (
        "param N\n"
        "real A(-8:N + 8), B(-8:N + 8)\n"
        "do I = 1, N\n"
        "  S1: A(I) = (A(I) + f(I))\n"
        "enddo\n"
        f"do J = {lo}, {hi}\n"
        + consumer
        + "enddo"
    )


class TestStripMine:
    @pytest.mark.parametrize("size", [2, 3, 4, 7, 16])
    def test_bit_exact_for_every_tile_size(self, size):
        """Dividing and non-dividing tile sizes both reproduce the
        original results exactly — the rewrite is pure bookkeeping."""
        p = cholesky()
        tiled = strip_mine(p, (0,), size)
        init = ArrayStore(p, {"N": 9}).snapshot()
        ref, _ = execute(p, {"N": 9}, arrays=init)
        got, _ = execute(tiled, {"N": 9}, arrays=init)
        assert np.array_equal(ref.arrays["A"], got.arrays["A"])

    def test_introduces_tile_loop_pair(self):
        p = cholesky()
        tiled = strip_mine(p, (0,), 4)
        outer = tiled.body[0]
        assert isinstance(outer, Loop) and outer.var == "KT"
        inner = outer.body[0]
        assert isinstance(inner, Loop) and inner.var == "K"

    def test_instance_count_preserved(self):
        p = cholesky()
        tiled = strip_mine(p, (0,), 3)
        _, t0 = execute(p, {"N": 8}, trace=True)
        _, t1 = execute(tiled, {"N": 8}, trace=True)
        assert len(t0) == len(t1)

    def test_tile_size_validation(self):
        p = cholesky()
        with pytest.raises(TransformError):
            strip_mine(p, (0,), 1)
        with pytest.raises(TransformError):
            strip_mine(p, (0,), 0)

    def test_tiling_matrix_is_nonsquare_bookkeeping(self):
        """One extra row (the tile coordinate) over the old layout, in
        the style of the §4.2 distribution matrices."""
        p = cholesky()
        m, tiled = tiling_matrix(p, (0,), 4)
        rows, cols = m.shape
        assert rows == cols + 1

    def test_tiled_dependences_stay_analyzable(self):
        """The floord/min bounds must lower to linear constraints — a
        tiled program flows through dependence analysis unchanged."""
        tiled = strip_mine(cholesky(), (0,), 4)
        deps = analyze_dependences(tiled)
        assert len(deps) > 0


class TestFuse:
    def test_exact_header_fusion_is_equivalent(self):
        src = (
            "param N\nreal A(N), B(N)\n"
            "do I = 1..N\n S1: A(I) = f(I)\nenddo\n"
            "do J = 1..N\n S2: B(J) = A(J) * 2\nenddo"
        )
        p = parse_program(src, "t")
        fused = fuse(p, (0,))
        assert fuse_site_offset(p.body[0], p.body[1]) == 0
        assert fuse_legal(p, (0,))
        init = ArrayStore(p, {"N": 8}).snapshot()
        s1, _ = execute(p, {"N": 8}, arrays=init)
        s2, _ = execute(fused, {"N": 8}, arrays=init)
        assert outputs_close(s1.snapshot(), s2.snapshot())

    def test_offset_fusion_legal_and_equivalent(self):
        """Headers shifted by a constant fuse through §4.3 alignment; a
        producer feeding the consumer at the offset stays legal."""
        p = parse_program(_two_loop_program(1), "t")
        assert fuse_site_offset(p.body[0], p.body[1]) == 1
        fused = fuse(p, (0,))
        assert fuse_legal(p, (0,))
        init = ArrayStore(p, {"N": 8}).snapshot()
        s1, _ = execute(p, {"N": 8}, arrays=init)
        s2, _ = execute(fused, {"N": 8}, arrays=init)
        assert outputs_close(s1.snapshot(), s2.snapshot())

    def test_offset_fusion_illegal_when_update_moves_early(self):
        """The canonical illegal case: the fused consumer scales A(I+1)
        before iteration I+1 increments it."""
        p = parse_program(_two_loop_program(1, flip=True), "t")
        assert fuse_site_offset(p.body[0], p.body[1]) == 1
        assert not fuse_legal(p, (0,))

    def test_illegal_fusion_emits_reject_event(self):
        p = parse_program(_two_loop_program(1, flip=True), "t")
        mem = obs.MemorySink()
        with obs.session(mem) as sess:
            assert not fuse_legal(p, (0,))
            assert sess.counters.get("legality.fusion_rejections") == 1
        assert mem.events_for("legality", "reject")

    def test_legal_fusion_emits_accept_event(self):
        p = parse_program(_two_loop_program(0), "t")
        mem = obs.MemorySink()
        with obs.session(mem):
            assert fuse_legal(p, (0,))
        assert mem.events_for("legality", "accept")

    def test_mismatched_trip_counts_not_fusable(self):
        src = (
            "param N\nreal A(N)\n"
            "do I = 1..N\n S1: A(I) = 1.0\nenddo\n"
            "do J = 1..N - 1\n S2: A(J) = 2.0\nenddo"
        )
        p = parse_program(src, "t")
        assert fuse_site_offset(p.body[0], p.body[1]) is None
        with pytest.raises(TransformError):
            fuse(p, (0,))


class TestParseSchedule:
    def test_tile_spec_round_trip(self):
        p = cholesky()
        sch = parse_schedule(p, "tile(K,4)")
        assert sch.structural == ("tile(K,4)",)
        assert sch.structural_legal
        assert sch.is_structural
        assert "KT" in [c.var for c in sch.layout.loop_coords()]

    def test_every_ladder_size_parses(self):
        for size in TILE_LADDER:
            sch = parse_schedule(cholesky(), f"tile(K,{size})")
            assert sch.structural_legal

    def test_structural_after_linear_rejected(self):
        with pytest.raises(ReproError):
            parse_schedule(cholesky(), "permute(K,I); tile(K,4)")

    def test_illegal_fuse_flagged_not_raised(self):
        """The rewrite is materialized even when illegal, so the fuzzer
        can execute it and watch the oracles flag the divergence."""
        p = parse_program(_two_loop_program(1, flip=True), "t")
        sch = parse_schedule(p, "fuse(I)")
        assert not sch.structural_legal

    def test_tile_pullback_drops_tile_coordinate(self):
        p = cholesky()
        sch = parse_schedule(p, "tile(K,4)")
        lbl = p.statements()[0].label
        vals = sch.program.loop_vars(lbl)
        assert "KT" in vals
        pulled = sch.pullback(lbl, [1, 5])  # (KT, K) -> (K,)
        assert pulled == (5,)

    def test_schedule_oracle_equivalence_tile_then_permute(self):
        """tile + interchange through codegen agrees with the source
        program under the composed pullback — the exact path run_case
        takes for structural fuzz specs."""
        p = cholesky()
        sch = parse_schedule(p, "tile(K,4)")
        g = generate_code(sch.program, sch.matrix, sch.deps)
        em = g.env_map()
        rep = check_equivalence(
            p, g.program, {"N": 7},
            env_map=lambda lbl, env: sch.pullback(lbl, em(lbl, env)),
        )
        assert rep["ok"], rep

    def test_fuse_pullback_restores_offset(self):
        p = parse_program(_two_loop_program(1), "t")
        sch = parse_schedule(p, "fuse(I)")
        assert sch.structural_legal
        # S2 at fused iteration I ran at J = I + 1 in the source
        assert sch.pullback("S2", [3]) == (4,)
        assert sch.pullback("S1", [3]) == (3,)


class TestTiledCholeskyBackends:
    def test_tiled_cholesky_bit_exact_on_every_backend(self):
        """The gate the lowering must clear: tiled bounds (floord/min)
        survive codegen and every execution backend bit-exactly."""
        p = cholesky()
        sch = parse_schedule(p, "tile(K,4)")
        g = generate_code(sch.program, sch.matrix, sch.deps)
        init = ArrayStore(p, {"N": 10}).snapshot()
        ref, _ = execute(p, {"N": 10}, arrays=init)
        for backend in BACKENDS:
            store = backend_run(g.program, {"N": 10}, arrays=init, backend=backend)
            assert np.array_equal(ref.arrays["A"], store.arrays["A"]), backend


if HAVE_HYPOTHESIS:

    @settings(max_examples=20, deadline=None)
    @given(
        offset=st.integers(min_value=-3, max_value=3),
        flip=st.booleans(),
        n=st.integers(min_value=4, max_value=8),
    )
    def test_property_fusion_verdict_matches_execution(offset, flip, n):
        """Two-sided contract over random offsets: when fuse_legal
        admits a fusion the fused program is observationally equivalent;
        when it rejects one, a legality-reject event was emitted."""
        p = parse_program(_two_loop_program(offset, flip=flip), "t")
        assert fuse_site_offset(p.body[0], p.body[1]) == offset
        fused = fuse(p, (0,))
        mem = obs.MemorySink()
        with obs.session(mem):
            legal = fuse_legal(p, (0,))
        if legal:
            init = ArrayStore(p, {"N": n}).snapshot()
            s1, _ = execute(p, {"N": n}, arrays=init)
            s2, _ = execute(fused, {"N": n}, arrays=init)
            assert outputs_close(s1.snapshot(), s2.snapshot())
        else:
            assert mem.events_for("legality", "reject")

    @settings(max_examples=15, deadline=None)
    @given(
        size=st.integers(min_value=2, max_value=9),
        n=st.integers(min_value=3, max_value=10),
    )
    def test_property_strip_mine_always_exact(size, n):
        """Strip-mining is unconditionally legal: bit-identical results
        for every (tile size, problem size) pair."""
        p = cholesky()
        tiled = strip_mine(p, loop_path_by_var(p, "K"), size)
        init = ArrayStore(p, {"N": n}).snapshot()
        ref, _ = execute(p, {"N": n}, arrays=init)
        got, _ = execute(tiled, {"N": n}, arrays=init)
        assert np.array_equal(ref.arrays["A"], got.arrays["A"])
