"""§4.2 distribution/jamming — matrices and AST rewrites."""

import pytest

from repro.dependence import analyze_dependences
from repro.interp import ArrayStore, execute, outputs_close
from repro.ir import Loop, parse_program
from repro.transform import (
    distribute, distribution_legal, distribution_matrix, jam, jamming_matrix,
)
from repro.util.errors import TransformError


class TestDistributeAST:
    def test_splits_into_two_loops(self, simp_chol):
        p2 = distribute(simp_chol, (0,), 1)
        assert len(p2.body) == 2
        assert all(isinstance(n, Loop) for n in p2.body)
        assert [s.label for s in p2.statements()] == ["S1", "S2"]

    def test_split_point_validation(self, simp_chol):
        with pytest.raises(TransformError):
            distribute(simp_chol, (0,), 0)
        with pytest.raises(TransformError):
            distribute(simp_chol, (0,), 2)

    def test_jam_restores(self, simp_chol):
        p2 = distribute(simp_chol, (0,), 1)
        p3 = jam(p2, (0,))
        assert str(p3) == str(simp_chol)

    def test_jam_header_mismatch_rejected(self):
        p = parse_program(
            "param N\nreal A(N)\n"
            "do I = 1..N\n S1: A(I) = 1.0\nenddo\n"
            "do I = 2..N\n S2: A(I) = 2.0\nenddo"
        )
        with pytest.raises(TransformError):
            jam(p, (0,))

    def test_distribute_semantics_when_legal(self):
        p = parse_program(
            "param N\nreal A(N), B(N)\n"
            "do I = 1..N\n S1: A(I) = f(I)\n S2: B(I) = A(I) * 2\nenddo"
        )
        p2 = distribute(p, (0,), 1)
        init = ArrayStore(p, {"N": 8}).snapshot()
        s1, _ = execute(p, {"N": 8}, arrays=init)
        s2, _ = execute(p2, {"N": 8}, arrays=init)
        assert outputs_close(s1.snapshot(), s2.snapshot())


class TestMatrices:
    def test_distribution_matrix_shape(self, simp_chol):
        m, p2 = distribution_matrix(simp_chol, (0,), 1)
        assert m.shape == (5, 4)

    def test_distribution_matrix_rows(self, simp_chol):
        """Eq-(1)-consistent version of the paper's §4.2 matrix (the
        paper's display swaps the last two rows — see EXPERIMENTS.md)."""
        m, _ = distribution_matrix(simp_chol, (0,), 1)
        assert m.tolist() == [
            [0, 1, 0, 0],
            [0, 0, 1, 0],
            [1, 0, 0, 0],
            [0, 0, 0, 1],
            [1, 0, 0, 0],
        ]

    def test_jamming_matrix_matches_paper(self, simp_chol):
        """§4.2's jamming matrix, reproduced exactly."""
        distributed = distribute(simp_chol, (0,), 1)
        m, fused = jamming_matrix(distributed, (0,))
        assert m.tolist() == [
            [0, 0, 1, 0, 0],
            [1, 0, 0, 0, 0],
            [0, 1, 0, 0, 0],
            [0, 0, 0, 1, 0],
        ]
        assert str(fused) == str(simp_chol)

    def test_jam_then_distribute_roundtrip_on_matrices(self, simp_chol):
        dm, distributed = distribution_matrix(simp_chol, (0,), 1)
        jm, fused = jamming_matrix(distributed, (0,))
        # J . D maps original coords to original coords; loop rows must
        # be identity on the loop positions that survive
        prod = jm @ dm
        assert prod.shape == (4, 4)
        assert prod[0, 0] == 1  # I -> I
        assert prod[3, 3] == 1  # J -> J


class TestDistributionLegality:
    def test_illegal_on_simplified_cholesky(self, simp_chol):
        """§1 claim: distribution is not legal in the factorization
        codes (the S2->S1 back edge is carried by the split loop)."""
        deps = analyze_dependences(simp_chol)
        assert distribution_legal(deps, (0,), 1) is False

    def test_illegal_on_full_cholesky(self, chol):
        deps = analyze_dependences(chol)
        assert distribution_legal(deps, (0,), 1) is False
        assert distribution_legal(deps, (0,), 2) is False

    def test_illegal_on_lu(self, lu):
        deps = analyze_dependences(lu)
        assert distribution_legal(deps, (0,), 1) is False

    def test_legal_on_forward_only_loop(self):
        p = parse_program(
            "param N\nreal A(N), B(N)\n"
            "do I = 1..N\n S1: A(I) = f(I)\n S2: B(I) = A(I) * 2\nenddo"
        )
        deps = analyze_dependences(p)
        assert distribution_legal(deps, (0,), 1) is True

    def test_splitting_outer_with_carried_backedge_is_illegal(self):
        p = parse_program(
            "param N\nreal A(0:N+1,0:N+1), B(0:N+1,0:N+1)\n"
            "do T = 1..N\n"
            "  do I = 1..N\n S1: A(T,I) = B(T-1,I)\n enddo\n"
            "  do J = 1..N\n S2: B(T,J) = A(T,J)\n enddo\n"
            "enddo"
        )
        deps = analyze_dependences(p)
        # the S2->S1 back edge is carried by T itself: splitting T would
        # run every S1 before any S2, breaking the B(T-1) flow
        assert distribution_legal(deps, (0,), 1) is False

    def test_legal_when_backward_dep_carried_outside(self):
        p = parse_program(
            "param N\nreal A(0:N+1), B(0:N+1)\n"
            "do T = 1..N\n"
            "  do I = 1..N\n"
            "    S1: A(I) = B(I) + f(T)\n"
            "    S2: B(I) = A(I) * 2\n"
            "  enddo\n"
            "enddo"
        )
        deps = analyze_dependences(p)
        # S2->S1 back edge exists but is carried by the enclosing T loop;
        # distributing the inner I loop is therefore legal
        assert distribution_legal(deps, (0, 0), 1) is True

    def test_non_loop_path_rejected(self, simp_chol):
        deps = analyze_dependences(simp_chol)
        with pytest.raises(TransformError):
            distribution_legal(deps, (0, 0), 1)
