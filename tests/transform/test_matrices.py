"""§4 transformation matrices — pinned to the paper's displayed examples."""

import pytest

from repro.instance import Layout
from repro.linalg import IntMatrix
from repro.transform import (
    alignment, compose, identity, permutation, reversal, scaling, skew,
    statement_reorder,
)
from repro.util.errors import TransformError


def applied(t, label):
    return [str(e) for e in t.apply_to_symbolic(label)]


class TestPermutation:
    """§4.1: interchange of I and J on simplified Cholesky."""

    def test_paper_matrix(self, simp_chol_layout):
        t = permutation(simp_chol_layout, "I", "J")
        assert t.matrix == IntMatrix(
            [[0, 0, 0, 1], [0, 1, 0, 0], [0, 0, 1, 0], [1, 0, 0, 0]]
        )

    def test_paper_transformed_vectors(self, simp_chol_layout):
        t = permutation(simp_chol_layout, "I", "J")
        # S1 is coincidentally unchanged; S2 swaps I and J
        assert applied(t, "S1") == ["I", "0", "1", "I"]
        assert applied(t, "S2") == ["J", "1", "0", "I"]

    def test_involution(self, simp_chol_layout):
        t = permutation(simp_chol_layout, "I", "J")
        assert t.matrix @ t.matrix == IntMatrix.identity(4)

    def test_by_path(self, simp_chol_layout):
        t = permutation(simp_chol_layout, (0,), (0, 1))
        assert t.matrix == permutation(simp_chol_layout, "I", "J").matrix


class TestSkewing:
    """§4.1: skew the outer loop by the inner, factor -1."""

    def test_paper_matrix(self, simp_chol_layout):
        t = skew(simp_chol_layout, "I", "J", -1)
        assert t.matrix == IntMatrix(
            [[1, 0, 0, -1], [0, 1, 0, 0], [0, 0, 1, 0], [0, 0, 0, 1]]
        )

    def test_paper_transformed_vectors(self, simp_chol_layout):
        t = skew(simp_chol_layout, "I", "J", -1)
        # S1 lands entirely in iteration 0 of the new outer loop
        assert applied(t, "S1") == ["0", "0", "1", "I"]
        assert applied(t, "S2") == ["I - J", "1", "0", "J"]

    def test_skew_by_self_rejected(self, simp_chol_layout):
        with pytest.raises(TransformError):
            skew(simp_chol_layout, "I", "I", 1)

    def test_unimodular(self, simp_chol_layout):
        assert skew(simp_chol_layout, "J", "I", 3).matrix.is_unimodular()


class TestReversalScaling:
    def test_reversal_matrix(self, simp_chol_layout):
        t = reversal(simp_chol_layout, "J")
        assert t.matrix == IntMatrix.diag([1, 1, 1, -1])

    def test_reversal_vectors(self, simp_chol_layout):
        t = reversal(simp_chol_layout, "I")
        assert applied(t, "S2")[0] == "-I"

    def test_scaling_matrix(self, simp_chol_layout):
        t = scaling(simp_chol_layout, "I", 2)
        assert t.matrix == IntMatrix.diag([2, 1, 1, 1])

    def test_zero_scale_rejected(self, simp_chol_layout):
        with pytest.raises(TransformError):
            scaling(simp_chol_layout, "I", 0)


class TestAlignment:
    """§4.3: align S1 with respect to I by +1."""

    def test_alignment_shifts_only_target(self, simp_chol_layout):
        t = alignment(simp_chol_layout, "S1", "I", 1)
        assert applied(t, "S1") == ["I + 1", "0", "1", "I"]
        assert applied(t, "S2") == ["I", "1", "0", "J"]

    def test_alignment_uses_statement_edge(self, simp_chol_layout):
        t = alignment(simp_chol_layout, "S1", "I", 1)
        # entry at (row I, column edge-to-S1)
        assert t.matrix[0, 2] == 1

    def test_negative_alignment(self, simp_chol_layout):
        t = alignment(simp_chol_layout, "S2", "I", -2)
        assert applied(t, "S2")[0] == "I - 2"
        assert applied(t, "S1")[0] == "I"

    def test_perfect_nest_alignment_impossible(self):
        from repro.ir import parse_program

        p = parse_program(
            "param N\nreal A(N)\ndo I = 1..N\n S1: A(I) = 1.0\nenddo"
        )
        with pytest.raises(TransformError):
            alignment(Layout(p), "S1", "I", 1)

    def test_alignment_of_nonenclosing_loop_rejected(self, simp_chol_layout):
        with pytest.raises(TransformError):
            alignment(simp_chol_layout, "S1", "J", 1)


class TestStatementReorder:
    """§4.2: swap S1 and the J loop under the I loop."""

    def test_paper_matrix(self, simp_chol_layout):
        t, _ = statement_reorder(simp_chol_layout, (0,), [1, 0])
        assert t.matrix == IntMatrix(
            [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]]
        )

    def test_new_program_order(self, simp_chol_layout):
        _, p2 = statement_reorder(simp_chol_layout, (0,), [1, 0])
        assert [s.label for s in p2.statements()] == ["S2", "S1"]

    def test_three_children(self, chol_layout):
        t, p2 = statement_reorder(chol_layout, (0,), [2, 0, 1])
        assert [s.label for s in p2.statements()] == ["S3", "S1", "S2"]
        assert t.matrix.is_permutation()

    def test_subtree_blocks_move(self, chol_layout):
        t, _ = statement_reorder(chol_layout, (0,), [2, 0, 1])
        # K row unchanged
        assert t.matrix[0] == (1, 0, 0, 0, 0, 0, 0)
        # applying to S3 must keep its (K,J,L) values at loop rows
        vec = [str(e) for e in t.apply_to_symbolic("S3")]
        assert vec[0] == "K" and "J" in vec and "L" in vec

    def test_identity_permutation(self, simp_chol_layout):
        t, p2 = statement_reorder(simp_chol_layout, (0,), [0, 1])
        assert t.matrix == IntMatrix.identity(4)

    def test_invalid_permutation(self, simp_chol_layout):
        with pytest.raises(TransformError):
            statement_reorder(simp_chol_layout, (0,), [0, 0])


class TestComposition:
    def test_identity_neutral(self, simp_chol_layout):
        t = permutation(simp_chol_layout, "I", "J")
        assert identity(simp_chol_layout).then(t).matrix == t.matrix

    def test_compose_order(self, simp_chol_layout):
        a = skew(simp_chol_layout, "I", "J", 1)
        b = reversal(simp_chol_layout, "I")
        ab = compose(a, b)  # apply a, then b
        assert ab.matrix == b.matrix @ a.matrix

    def test_compose_empty_rejected(self):
        with pytest.raises(TransformError):
            compose()

    def test_group_property_on_unimodular(self, simp_chol_layout):
        seq = compose(
            skew(simp_chol_layout, "I", "J", 2),
            permutation(simp_chol_layout, "I", "J"),
            reversal(simp_chol_layout, "J"),
        )
        assert seq.matrix.is_unimodular()
