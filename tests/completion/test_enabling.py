"""Distribution/fusion-enabled completion (the paper's §7 future work)."""

import pytest

from repro.codegen import generate_code
from repro.completion import complete_with_restructuring
from repro.interp import ArrayStore, execute, outputs_close
from repro.ir import parse_program
from repro.util.errors import CompletionError

DISTRIBUTABLE = """
param N
real A(0:N+1), B(0:N+1)
do I = 1..N
  S1: A(I) = f(I)
  do J = 1..N
    S2: B(J) = B(J) + A(I)*0.001
  enddo
enddo
"""


def outputs_match(src, generated, params):
    init = ArrayStore(src, params).snapshot()
    s0, _ = execute(src, params, arrays=init)
    s1, _ = execute(generated, params, arrays=init)
    return outputs_close(s0.snapshot(), s1.snapshot())


class TestEnabledCompletion:
    def test_zero_moves_when_plain_works(self):
        from repro.kernels import cholesky

        ec = complete_with_restructuring(cholesky(), "L")
        assert not ec.restructured
        assert ec.moves == ()

    def test_distribution_enables_j_outer(self):
        p = parse_program(DISTRIBUTABLE, "distributable")
        ec = complete_with_restructuring(p, "J", max_moves=2)
        assert ec.restructured
        assert any("distribute" in m for m in ec.moves)
        g = generate_code(ec.program, ec.result.matrix)
        assert outputs_match(p, g.program, {"N": 6})

    def test_restructured_program_semantics_preserved(self):
        p = parse_program(DISTRIBUTABLE, "distributable")
        ec = complete_with_restructuring(p, "J", max_moves=2)
        # the restructured source itself is equivalent to the original
        assert outputs_match(p, ec.program, {"N": 6})

    def test_factorization_distribution_never_chosen(self):
        """Cholesky's distribution is illegal, so no enabling move can
        use it; an impossible lead must still fail."""
        from repro.kernels import cholesky

        with pytest.raises(CompletionError):
            complete_with_restructuring(cholesky(), "J", max_moves=2)

    def test_move_bound_respected(self):
        p = parse_program(DISTRIBUTABLE, "distributable")
        with pytest.raises(CompletionError):
            complete_with_restructuring(p, "J", max_moves=0)

    def test_fusion_move_available(self):
        # two identical adjacent loops with only forward deps: the jam
        # is among the candidate moves and harmless
        p = parse_program(
            "param N\nreal A(0:N+1), B(0:N+1)\n"
            "do I = 1..N\n S1: A(I) = f(I)\nenddo\n"
            "do I = 1..N\n S2: B(I) = A(I)\nenddo"
        )
        from repro.completion.enabling import _fusion_moves

        moves = list(_fusion_moves(p))
        assert moves
        fused, desc = moves[0]
        assert "fuse" in desc
        assert outputs_match(p, fused, {"N": 6})

    def test_illegal_fusion_rejected(self):
        # fusing would read A(I+1) before it is rewritten: semantics differ
        p = parse_program(
            "param N\nreal A(0:N+2), B(0:N+2)\n"
            "do I = 1..N\n S1: B(I) = A(I+1)\nenddo\n"
            "do I = 1..N\n S2: A(I) = B(I) * 2\nenddo"
        )
        from repro.completion.enabling import _fusion_moves

        # fusion here changes values read by S1 at later iterations?
        # S2 writes A(I) which S1 reads as A(I+1) at iteration I-1 —
        # fused, S2(I) runs before S1(I+1): anti becomes flow: illegal
        for fused, _ in _fusion_moves(p):
            assert outputs_match(p, fused, {"N": 5})
