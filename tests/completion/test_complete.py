"""The completion procedure (§6, experiment E9)."""

import pytest

from repro.codegen import generate_code
from repro.completion import complete_transformation
from repro.dependence import analyze_dependences
from repro.instance import Layout
from repro.interp import check_equivalence
from repro.ir import parse_program
from repro.legality import check_legality
from repro.linalg import IntMatrix
from repro.transform import permutation
from repro.util.errors import CompletionError


@pytest.fixture(scope="module")
def chol_setup(request):
    from repro.kernels import cholesky

    p = cholesky()
    lay = Layout(p)
    deps = analyze_dependences(p)
    return p, lay, deps


class TestCholeskyCompletion:
    def test_empty_partial_completes_to_identity(self, chol_setup):
        p, lay, deps = chol_setup
        res = complete_transformation(p, [], deps, layout=lay)
        assert res.matrix == IntMatrix.identity(7)

    def test_left_looking_from_L_outer(self, chol_setup):
        """First row = unit of the old L coordinate (position 5): the
        completion must reorder the K-loop children so the update nest
        runs first — left-looking Cholesky (the paper's §6 result)."""
        p, lay, deps = chol_setup
        partial = [[0, 0, 0, 0, 0, 1, 0]]
        res = complete_transformation(p, partial, deps, layout=lay)
        assert res.matrix[0] == (0, 0, 0, 0, 0, 1, 0)
        # the J-loop subtree (old child 2) moves to the front
        assert res.child_order[(0,)][0] == 2
        r = check_legality(lay, res.matrix, deps)
        assert r.legal

    def test_left_looking_codegen_equivalence(self, chol_setup):
        p, lay, deps = chol_setup
        res = complete_transformation(p, [[0, 0, 0, 0, 0, 1, 0]], deps, layout=lay)
        g = generate_code(p, res.matrix, deps)
        # generated program is left-looking: S3 syntactically first
        assert [s.label for s in g.program.statements()][0] == "S3"
        rep = check_equivalence(p, g.program, {"N": 7}, env_map=g.env_map())
        assert rep["ok"]

    def test_K_outer_completable(self, chol_setup):
        """K-lead (the original right-looking family) completes."""
        p, lay, deps = chol_setup
        res = complete_transformation(p, [[1, 0, 0, 0, 0, 0, 0]], deps, layout=lay)
        assert check_legality(lay, res.matrix, deps).legal
        g = generate_code(p, res.matrix, deps)
        rep = check_equivalence(p, g.program, {"N": 6}, env_map=g.env_map())
        assert rep["ok"]

    def test_row_leads_not_expressible(self, chol_setup):
        """J-lead and I-lead unit rows are *not* completable: the
        diagonal embedding pins S2 (resp. S3) to its K value at those
        coordinates, so row-Cholesky is outside the unit-row fragment.
        (The paper's six-permutation claim concerns the 3-loop forms,
        which the kernel corpus covers directly — see E10.)"""
        p, lay, deps = chol_setup
        n = lay.dimension
        for pos in (4, 6):  # J, I coordinates
            partial = [[1 if j == pos else 0 for j in range(n)]]
            with pytest.raises(CompletionError):
                complete_transformation(p, partial, deps, layout=lay)

    def test_lead_choices_partition(self, chol_setup):
        """Exactly the K and L coordinates can lead the transformed
        nest within the permutation fragment."""
        p, lay, deps = chol_setup
        n = lay.dimension
        legal_leads = []
        for pos in (0, 4, 5, 6):  # K, J, L, I
            partial = [[1 if j == pos else 0 for j in range(n)]]
            try:
                res = complete_transformation(p, partial, deps, layout=lay)
            except CompletionError:
                continue
            if check_legality(lay, res.matrix, deps).legal:
                legal_leads.append(pos)
        assert legal_leads == [0, 5]  # K (right-looking), L (left-looking)


class TestSimplifiedCholesky:
    def test_interchange_needs_reordering(self, simp_chol, simp_chol_layout):
        """Plain I<->J interchange is illegal, but completion starting
        from 'J outermost' finds a legal variant (with reordering)."""
        deps = analyze_dependences(simp_chol)
        t = permutation(simp_chol_layout, "I", "J")
        assert not check_legality(simp_chol_layout, t.matrix, deps).legal
        res = complete_transformation(
            simp_chol, [[0, 0, 0, 1]], deps, layout=simp_chol_layout
        )
        assert check_legality(simp_chol_layout, res.matrix, deps).legal
        g = generate_code(simp_chol, res.matrix, deps)
        rep = check_equivalence(simp_chol, g.program, {"N": 7}, env_map=g.env_map())
        assert rep["ok"]


class TestFailures:
    def test_impossible_partial_raises(self):
        # forward recurrence: outer loop cannot be reversed
        p = parse_program(
            "param N\nreal A(0:N)\ndo I = 1..N\n S1: A(I) = A(I-1)\nenddo"
        )
        with pytest.raises(CompletionError):
            complete_transformation(p, [[-1]], allow_reversal=True)

    def test_wrong_row_length_raises(self, simp_chol):
        with pytest.raises(CompletionError):
            complete_transformation(simp_chol, [[1, 0]])

    def test_reversal_fragment(self):
        # independent loop: reversal of I is fine and reachable
        p = parse_program(
            "param N\nreal A(N)\ndo I = 1..N\n S1: A(I) = f(I)\nenddo"
        )
        res = complete_transformation(p, [[-1]], allow_reversal=True)
        assert res.matrix == IntMatrix([[-1]])


class TestLU:
    def test_lu_kj_interchange_via_completion(self, lu):
        lay = Layout(lu)
        deps = analyze_dependences(lu)
        # lead with the J coordinate of the update nest
        jpos = lay.loop_index_by_var("J")
        partial = [[1 if j == jpos else 0 for j in range(lay.dimension)]]
        res = complete_transformation(lu, partial, deps, layout=lay)
        assert check_legality(lay, res.matrix, deps).legal
        g = generate_code(lu, res.matrix, deps)
        rep = check_equivalence(lu, g.program, {"N": 6}, env_map=g.env_map())
        assert rep["ok"]


class TestSkewedPartials:
    ANTIDIAG = (
        "param N\nreal A(-99:3*N+99, -99:3*N+99)\n"
        "do I = 1..N\n do J = 1..N\n"
        "  S1: A(I,J) = A(I-1,J+1) + f(I,J)\n enddo\nenddo"
    )

    def test_wavefront_partial_completes(self):
        p = parse_program(self.ANTIDIAG, "antidiag")
        lay = Layout(p)
        deps = analyze_dependences(p)
        res = complete_transformation(p, [[1, 1]], deps, layout=lay)
        assert res.matrix[0] == (1, 1)
        assert res.matrix.is_unimodular() or res.matrix.rank() == 2
        g = generate_code(p, res.matrix, deps)
        rep = check_equivalence(p, g.program, {"N": 6}, env_map=g.env_map())
        assert rep["ok"]

    def test_illegal_lead_still_rejected(self):
        p = parse_program(self.ANTIDIAG, "antidiag")
        lay = Layout(p)
        deps = analyze_dependences(p)
        # J outermost reverses the (1,-1) dependence; not fixable by
        # later rows, with or without skewed candidates
        with pytest.raises(CompletionError):
            complete_transformation(p, [[0, 1]], deps, layout=lay, skew_bound=2)

    def test_skew_bound_candidates_searched(self):
        p = parse_program(self.ANTIDIAG, "antidiag")
        lay = Layout(p)
        deps = analyze_dependences(p)
        # same completion must also be reachable when skewed rows are in
        # the candidate pool (search stays correct, just larger)
        res = complete_transformation(p, [[1, 1]], deps, layout=lay, skew_bound=1)
        g = generate_code(p, res.matrix, deps)
        rep = check_equivalence(p, g.program, {"N": 5}, env_map=g.env_map())
        assert rep["ok"]
