"""Every committed corpus file must replay green: historical repros are
regression tests forever (acceptance gate for the fuzz subsystem)."""

import json
import pathlib

import pytest

from repro.fuzz import (
    FuzzCase, case_from_dict, case_to_dict, load_corpus, replay_entry,
    save_repro,
)
from repro.fuzz.corpus import SCHEMA

CORPUS_DIR = pathlib.Path(__file__).resolve().parent.parent / "fuzz_corpus"


def corpus_entries():
    entries = load_corpus(CORPUS_DIR)
    assert entries, f"regression corpus {CORPUS_DIR} must not be empty"
    return entries


@pytest.mark.parametrize(
    "path,case,expect,record",
    corpus_entries(),
    ids=[p.name for p, *_ in corpus_entries()],
)
class TestReplay:
    def test_replays_green(self, path, case, expect, record):
        ok, detail = replay_entry(case, expect)
        assert ok, f"{path.name}: {detail}"

    def test_record_is_well_formed(self, path, case, expect, record):
        assert record["schema"] == SCHEMA
        assert expect in (
            "equivalent", "illegal-flagged", "backend-equivalent", "no-divergence",
            "symbolic-legal",
        )
        assert case.program_src.strip()
        assert case.kind in ("spec", "complete")


class TestSerialization:
    def test_roundtrip(self):
        case = FuzzCase(
            program_src="param N\ndo I = 1, N\n  S1: A(I) = f(I)\nenddo",
            spec="reverse(I)",
            params=(("M", 3), ("N", 4)),
            note="roundtrip",
        )
        record = case_to_dict(case, expect="equivalent", detail="d", seed=9)
        back, expect = case_from_dict(record)
        assert back == case
        assert expect == "equivalent"

    def test_save_is_content_addressed_and_idempotent(self, tmp_path):
        case = FuzzCase(program_src="param N\ndo I = 1, N\n  S1: A(I) = f(I)\nenddo",
                        spec="reverse(I)")
        p1 = save_repro(tmp_path, case, expect="equivalent")
        p2 = save_repro(tmp_path, case, expect="equivalent")
        assert p1 == p2
        assert len(list(tmp_path.glob("*.json"))) == 1
        # metadata does not change the address; the payload does
        p3 = save_repro(tmp_path, case.with_(spec="reverse(I); reverse(I)"),
                        expect="equivalent")
        assert p3 != p1

    def test_corpus_files_are_normalized_json(self):
        for path, *_ in corpus_entries():
            record = json.loads(path.read_text())
            expected = json.dumps(record, indent=2, sort_keys=True) + "\n"
            assert path.read_text() == expected, f"{path.name} not normalized"
