"""Shrinker unit tests: monotonic size, fixed-point termination, and
preservation of the failure predicate."""

import pytest

from repro.fuzz import FuzzCase, case_size, known_illegal_case, run_case, shrink_case
from repro.fuzz.shrink import shrink_candidates
from repro.ir import parse_program
from repro.kernels import random_program
from repro.ir.printer import program_to_str
from repro.util.errors import ReproError


def _case_from_seed(seed: int, spec: str, n: int = 4) -> FuzzCase:
    return FuzzCase(
        program_src=program_to_str(random_program(seed)),
        spec=spec,
        params=(("N", n),),
    )


class TestCandidates:
    def test_candidates_are_strictly_smaller_or_filtered(self):
        """shrink_case only accepts strictly smaller candidates; here we
        check the generator itself mostly proposes smaller ones and every
        proposal is well-formed enough to size."""
        case = _case_from_seed(3, "reverse(V1); skew(V1,V2,-2)")
        size = case_size(case)
        candidates = list(shrink_candidates(case))
        assert candidates, "a non-trivial case must have reductions"
        for cand in candidates:
            assert case_size(cand) < 10**9  # all parse
        assert any(case_size(c) < size for c in candidates)

    def test_candidate_programs_parse_and_validate(self):
        case = _case_from_seed(7, "reverse(V1)")
        for cand in shrink_candidates(case):
            parse_program(cand.program_src, "cand")  # label/scope validation

    def test_dropping_statement_drops_spec_ops_naming_it(self):
        case = _case_from_seed(3, "align(S1,V1,1); reverse(V1)")
        specs = {c.spec for c in shrink_candidates(case) if "S1:" not in c.program_src}
        assert specs  # S1 was droppable
        assert all("S1" not in s for s in specs)


class TestShrinkEngine:
    def test_monotonic_and_preserved_predicate(self):
        """Every accepted step strictly decreases case_size, and the
        minimum still satisfies the failure predicate."""
        case = known_illegal_case(n=6)
        target = run_case(case).verdict
        assert target == "divergence-oracle"
        accepted_sizes = [case_size(case)]

        def failing(cand: FuzzCase) -> bool:
            ok = run_case(cand).verdict == target
            if ok:
                accepted_sizes.append(case_size(cand))
            return ok

        minimal, steps = shrink_case(case, failing)
        # the engine only evaluates candidates strictly smaller than the
        # current case, so the chain of accepted sizes must be strictly
        # decreasing
        assert steps >= 1
        assert case_size(minimal) < case_size(case)
        assert run_case(minimal).verdict == target
        assert all(
            b < a for a, b in zip(accepted_sizes, accepted_sizes[1:])
        ), accepted_sizes

    def test_fixed_point_termination(self):
        """Re-shrinking an already-minimal case accepts zero steps."""
        case = known_illegal_case(n=6)
        target = run_case(case).verdict
        minimal, steps1 = shrink_case(case, lambda c: run_case(c).verdict == target)
        again, steps2 = shrink_case(minimal, lambda c: run_case(c).verdict == target)
        assert steps2 == 0
        assert again == minimal

    def test_attempt_budget_respected(self):
        case = known_illegal_case(n=6)
        target = run_case(case).verdict
        calls = [0]

        def failing(cand):
            calls[0] += 1
            return run_case(cand).verdict == target

        shrink_case(case, failing, max_attempts=3)
        assert calls[0] <= 3

    def test_never_failing_case_is_returned_unchanged(self):
        case = _case_from_seed(5, "reverse(V1)")
        minimal, steps = shrink_case(case, lambda c: False)
        assert steps == 0
        assert minimal == case

    def test_synthetic_predicate_structural_minimum(self):
        """With a pipeline-free predicate ('program still contains S2'),
        the shrinker must strip everything not needed to keep S2."""
        case = _case_from_seed(3, "reverse(V1)")
        assert "S2:" in case.program_src

        def failing(cand: FuzzCase) -> bool:
            try:
                parse_program(cand.program_src, "p")
            except ReproError:
                return False
            return "S2:" in cand.program_src

        minimal, steps = shrink_case(case, failing)
        assert steps >= 1
        program = parse_program(minimal.program_src, "min")
        assert [s.label for s in program.statements()] == ["S2"]
        # every surviving loop is structurally required (top-level anchor)
        assert len(program.all_loops()) <= 1


class TestSizeMetric:
    def test_positive_and_sensitive(self):
        small = known_illegal_case(n=2)
        large = _case_from_seed(3, "reverse(V1); skew(V1,V2,-2)", n=5)
        assert 0 < case_size(small) < case_size(large)

    def test_unparseable_is_worst(self):
        junk = FuzzCase(program_src="do I = ", spec="reverse(I)")
        assert case_size(junk) == 10**9

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_param_shrink_reflected(self, n):
        base = known_illegal_case(n=n)
        if n > 2:
            assert case_size(known_illegal_case(n=n - 1)) < case_size(base)
