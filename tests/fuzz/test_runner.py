"""Runner and CLI: bounded sessions, injection, parallel determinism,
corpus writing, counters, exit codes."""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.fuzz import fuzz_run, known_illegal_case, run_case
from repro.fuzz.case import DIVERGENCE_VERDICTS, PASS_VERDICTS


class TestRunCase:
    def test_known_illegal_case_is_caught(self):
        result = run_case(known_illegal_case())
        assert result.verdict == "divergence-oracle"
        assert "dependence violation" in result.detail

    def test_known_illegal_case_honest_run_is_rejected(self):
        result = run_case(known_illegal_case().with_(claim_legal=False))
        assert result.verdict == "illegal-confirmed"

    def test_verdict_vocabulary_is_closed(self):
        assert not set(DIVERGENCE_VERDICTS) & set(PASS_VERDICTS)


class TestFuzzRun:
    def test_bounded_run_is_clean(self, tmp_path):
        session = fuzz_run(6, 0, corpus_dir=tmp_path)
        assert session.ok
        assert sum(session.verdict_counts.values()) == 6
        assert not list(tmp_path.glob("*.json"))

    def test_injected_illegal_produces_minimized_repro(self, tmp_path):
        session = fuzz_run(
            2, 0, corpus_dir=tmp_path, inject={0: known_illegal_case()}
        )
        assert not session.ok
        assert len(session.divergences) == 1
        assert session.divergences[0].verdict == "divergence-oracle"
        assert session.shrink_steps >= 1
        (path,) = session.repro_paths
        record = json.loads(path.read_text())
        assert record["expect"] == "illegal-flagged"
        assert record["params"] == {"N": 2}  # shrunk from the injected N=6

    def test_no_minimize_keeps_case_verbatim(self, tmp_path):
        session = fuzz_run(
            1, 0, corpus_dir=tmp_path, inject={0: known_illegal_case()},
            minimize=False,
        )
        record = json.loads(session.repro_paths[0].read_text())
        assert record["params"] == {"N": 6}
        assert session.shrink_steps == 0

    def test_parallel_matches_serial(self, tmp_path):
        serial = fuzz_run(8, 3, corpus_dir=None)
        parallel = fuzz_run(8, 3, corpus_dir=None, jobs=2)
        assert serial.verdict_counts == parallel.verdict_counts
        assert [r.verdict for r in serial.divergences] == [
            r.verdict for r in parallel.divergences
        ]

    def test_counters_cover_the_run(self):
        mem = obs.MemorySink()
        with obs.session(mem) as sess:
            fuzz_run(5, 0)
            counters = dict(sess.counters)
        assert counters["fuzz.runs"] == 5
        assert counters.get("fuzz.legal", 0) + counters.get(
            "fuzz.illegal", 0
        ) <= 5
        assert "fuzz.divergences" not in counters

    def test_injection_counts_divergence(self):
        mem = obs.MemorySink()
        with obs.session(mem) as sess:
            fuzz_run(1, 0, inject={0: known_illegal_case()}, minimize=False)
            counters = dict(sess.counters)
        assert counters["fuzz.divergences"] == 1


class TestCli:
    def test_clean_run_exits_zero(self, tmp_path, capsys):
        rc = main(
            ["fuzz", "--runs", "3", "--seed", "0", "--corpus", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "3 runs" in out
        assert "divergences: 0" in out

    def test_injection_exits_nonzero_with_repro(self, tmp_path, capsys):
        rc = main(
            [
                "fuzz", "--runs", "2", "--seed", "0",
                "--corpus", str(tmp_path), "--inject-illegal",
            ]
        )
        captured = capsys.readouterr()
        assert rc == 1
        assert "divergence" in captured.err
        repros = list(tmp_path.glob("fuzz-*.json"))
        assert len(repros) == 1

    @pytest.mark.parametrize("flag", ["--profile"])
    def test_obs_flags_accepted(self, tmp_path, capsys, flag):
        rc = main(
            ["fuzz", "--runs", "1", "--seed", "0", "--corpus", str(tmp_path), flag]
        )
        assert rc == 0
        assert "fuzz.runs" in capsys.readouterr().err
