"""Sampler determinism and coverage: cases are pure functions of
(master_seed, index), in-process and across processes."""

import os
import pathlib
import random
import subprocess
import sys

from repro.fuzz import run_case, sample_case
from repro.fuzz.sample import SHAPE_WEIGHTS, sample_spec
from repro.instance import Layout
from repro.ir import parse_program
from repro.kernels import random_program
from repro.transform.spec import STRUCTURAL_OPS, parse_schedule, parse_spec, spec_ops


def _src_path() -> str:
    import repro

    return str(pathlib.Path(repro.__file__).resolve().parent.parent)


class TestDeterminism:
    def test_same_coordinates_same_case(self):
        for index in range(6):
            assert sample_case(11, index) == sample_case(11, index)

    def test_distinct_indices_distinct_cases(self):
        cases = {sample_case(0, i).program_src for i in range(12)}
        assert len(cases) >= 10

    def test_deterministic_across_processes(self):
        """A worker process re-deriving a case from (seed, index) must
        get the byte-identical case the parent would have sampled."""
        code = (
            "from repro.fuzz import sample_case\n"
            "for i in range(8):\n"
            "    c = sample_case(42, i)\n"
            "    print(repr((c.program_src, c.kind, c.spec, c.lead, c.params)))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
            env={**os.environ, "PYTHONPATH": _src_path(), "PYTHONHASHSEED": "random"},
        ).stdout
        expected = []
        for i in range(8):
            c = sample_case(42, i)
            expected.append(repr((c.program_src, c.kind, c.spec, c.lead, c.params)))
        assert out.rstrip("\n") == "\n".join(expected)


class TestCoverage:
    def test_all_shapes_reached(self):
        shapes = set()
        for i in range(60):
            note = sample_case(7, i).note
            shapes.add(note.rsplit("shape=", 1)[1])
        assert shapes == {name for name, _ in SHAPE_WEIGHTS}

    def test_both_kinds_reached(self):
        kinds = {sample_case(7, i).kind for i in range(40)}
        assert kinds == {"spec", "complete"}

    def test_sampled_specs_parse_on_their_layout(self):
        for i in range(20):
            case = sample_case(3, i)
            program = parse_program(case.program_src, "t")
            layout = Layout(program)
            if case.kind == "spec":
                parse_schedule(program, case.spec)  # must not raise
                assert 1 <= len(spec_ops(case.spec)) <= 3
            else:
                assert case.lead in [c.var for c in layout.loop_coords()]

    def test_structural_ops_appear_in_stream(self):
        """tile and fuse must both show up in a modest stream prefix."""
        seen = set()
        for i in range(300):
            case = sample_case(5, i)
            if case.kind != "spec":
                continue
            for op in spec_ops(case.spec):
                name = op.split("(", 1)[0]
                if name in STRUCTURAL_OPS:
                    seen.add(name)
            if seen == set(STRUCTURAL_OPS):
                break
        assert seen == {"tile", "fuse"}

    def test_sample_spec_on_single_loop_program(self):
        program = random_program(5, max_depth=1)
        layout = Layout(program)
        spec = sample_spec(layout, random.Random(0))
        parse_spec(layout, spec)


class TestStream:
    def test_stream_prefix_runs_clean(self):
        """A short prefix of the default stream upholds the contract."""
        for i in range(4):
            result = run_case(sample_case(0, i))
            assert not result.divergent, (i, result.verdict, result.detail)
