"""Stencil/BLAS workloads: semantics and framework behaviour."""

import numpy as np
import pytest

from repro.analysis import outer_parallel_unit_rows, parallel_loops
from repro.codegen import generate_code
from repro.dependence import analyze_dependences
from repro.instance import Layout
from repro.interp import ArrayStore, check_equivalence, execute
from repro.kernels import (
    blur_2d, gauss_seidel_1d, gemver_like, jacobi_1d, sweep_pair, syrk_like,
)
from repro.legality import check_legality
from repro.linalg import IntMatrix
from repro.transform import distribution_legal, permutation, skew


class TestSemantics:
    def test_blur_matches_numpy(self):
        p = blur_2d()
        base = ArrayStore(p, {"N": 8}).snapshot()
        store, _ = execute(p, {"N": 8}, arrays=base)
        a = base["A"]
        expected = (a[0:-2, 1:-1] + a[2:, 1:-1] + a[1:-1, 0:-2] + a[1:-1, 2:]) / 4
        assert np.allclose(store.arrays["B"][1:-1, 1:-1], expected)

    def test_jacobi_converges_towards_constant(self):
        p = jacobi_1d()
        init = {"A": np.zeros(12), "B": np.zeros(12)}
        init["A"][1:11] = 1.0
        store, _ = execute(p, {"N": 10, "T": 50}, arrays=init)
        inner = store.arrays["A"][1:11]
        assert inner.std() < 0.2  # smoothing towards the 0 boundaries

    def test_gemver_matvec_correct(self):
        p = gemver_like()
        base = ArrayStore(p, {"N": 6}).snapshot()
        store, _ = execute(p, {"N": 6}, arrays=base)
        a_updated = base["A"] + np.outer(base["U"], base["V"])
        assert np.allclose(store.arrays["A"], a_updated)
        assert np.allclose(store.arrays["X"], a_updated @ base["Y"], rtol=1e-9)

    def test_syrk_triangular(self):
        p = syrk_like()
        base = ArrayStore(p, {"N": 5}).snapshot()
        store, _ = execute(p, {"N": 5}, arrays=base)
        full = base["C"] + base["A"] @ base["A"].T
        tril = np.tril_indices(5)
        assert np.allclose(store.arrays["C"][tril], full[tril], rtol=1e-9)


class TestFrameworkBehaviour:
    def test_jacobi_sweeps_fusable(self):
        p = jacobi_1d()
        deps = analyze_dependences(p)
        # splitting the time loop is illegal (B feeds back into A)
        assert distribution_legal(deps, (0,), 1) is False

    def test_gauss_seidel_needs_skewing(self):
        """Neither loop of Gauss–Seidel is parallel; skewing the time
        loop by the space loop is legal (wavefront)."""
        p = gauss_seidel_1d()
        lay = Layout(p)
        deps = analyze_dependences(p)
        marks = parallel_loops(lay, IntMatrix.identity(lay.dimension), deps)
        assert not any(m.is_parallel for m in marks)
        t = skew(lay, "I", "S", 2)
        assert check_legality(lay, t.matrix, deps).legal

    def test_blur_fully_parallel(self):
        p = blur_2d()
        lay = Layout(p)
        deps = analyze_dependences(p)
        rows = outer_parallel_unit_rows(lay, deps)
        assert {c.var for c in rows} == {"I", "J"}

    def test_blur_interchange_verified(self):
        p = blur_2d()
        lay = Layout(p)
        deps = analyze_dependences(p)
        t = permutation(lay, "I", "J")
        g = generate_code(p, t.matrix, deps)
        rep = check_equivalence(p, g.program, {"N": 6}, env_map=g.env_map())
        assert rep["ok"]

    def test_sweep_pair_distribution_noop(self):
        # already distributed; fusing is the interesting direction
        from repro.completion.enabling import _fusion_moves

        p = sweep_pair()
        fused = list(_fusion_moves(p))
        assert len(fused) == 1

    def test_gemver_k_loop_not_parallel(self):
        p = gemver_like()
        lay = Layout(p)
        deps = analyze_dependences(p)
        marks = {m.var: m for m in parallel_loops(lay, IntMatrix.identity(lay.dimension), deps)}
        assert not marks["K"].is_parallel  # reduction into X(I)
        assert marks["J"].is_parallel


class TestBuilderDSL:
    def test_builder_roundtrip(self):
        from repro.ir import nest, program_to_str, parse_program

        p = (
            nest("t", params=["N"])
            .array("A", "N")
            .loop("I", 1, "N")
            .stmt("S1", "A(I)", "f(I)")
            .end()
            .build()
        )
        text = program_to_str(p)
        assert program_to_str(parse_program(text, "t")) == text

    def test_builder_auto_labels(self):
        from repro.ir import nest

        p = (
            nest("t", params=["N"]).array("A", "N")
            .loop("I", 1, "N")
            .stmt("A(I)", "1.0")
            .stmt("A(I)", "2.0")
            .end()
            .build()
        )
        assert [s.label for s in p.statements()] == ["S1", "S2"]

    def test_builder_unclosed_loop_rejected(self):
        from repro.ir import nest
        from repro.util.errors import IRError

        b = nest("t", params=["N"]).array("A", "N").loop("I", 1, "N").stmt("A(I)", "1.0")
        with pytest.raises(IRError):
            b.build()

    def test_builder_empty_loop_rejected(self):
        from repro.ir import nest
        from repro.util.errors import IRError

        with pytest.raises(IRError):
            nest("t").loop("I", 1, 5).end()

    def test_builder_bad_lhs_rejected(self):
        from repro.ir import nest
        from repro.util.errors import IRError

        with pytest.raises(IRError):
            nest("t").loop("I", 1, 5).stmt("1 + 2", "3")
