"""Kernel corpus correctness: the six Cholesky orders, LU, solves."""

import os
import pathlib

import numpy as np
import pytest

from repro.interp import ArrayStore, execute
from repro.ir import program_to_str
from repro.kernels import (
    CHOLESKY_VARIANTS, cholesky, cholesky_variant, forward_substitution,
    lu_factorization, matmul, triangular_solve,
)


def _src_path() -> str:
    """The repo's src/ directory, for PYTHONPATH in subprocess tests."""
    import repro

    return str(pathlib.Path(repro.__file__).resolve().parent.parent)


@pytest.fixture(scope="module")
def spd(request):
    return ArrayStore(cholesky_variant("kji"), {"N": 9}).snapshot()


class TestCholeskyVariants:
    def test_six_variants_exist(self):
        assert len(CHOLESKY_VARIANTS) == 6
        assert set(CHOLESKY_VARIANTS) == {"ijk", "ikj", "jik", "jki", "kij", "kji"}

    @pytest.mark.parametrize("order", CHOLESKY_VARIANTS)
    def test_variant_matches_numpy(self, order, spd):
        prog = cholesky_variant(order)
        store, _ = execute(prog, {"N": 9}, arrays=spd)
        ours = np.tril(store.arrays["A"])
        ref = np.linalg.cholesky(spd["A"])
        assert np.allclose(ours, ref, rtol=1e-8), order

    @pytest.mark.parametrize("order", CHOLESKY_VARIANTS)
    def test_variants_pairwise_equal(self, order, spd):
        ref_store, _ = execute(cholesky_variant("kji"), {"N": 9}, arrays=spd)
        store, _ = execute(cholesky_variant(order), {"N": 9}, arrays=spd)
        assert np.allclose(
            np.tril(store.arrays["A"]), np.tril(ref_store.arrays["A"]), rtol=1e-9
        )

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            cholesky_variant("zzz")

    def test_paper_cholesky_matches_variants(self, spd):
        store, _ = execute(cholesky(), {"N": 9}, arrays=spd)
        ref = np.linalg.cholesky(spd["A"])
        assert np.allclose(np.tril(store.arrays["A"]), ref, rtol=1e-8)

    def test_variant_instance_counts_equal(self, spd):
        counts = set()
        for order in CHOLESKY_VARIANTS:
            _, t = execute(cholesky_variant(order), {"N": 7}, arrays=None, trace=True)
            counts.add(len(t))
        assert len(counts) == 1  # same work in every order


class TestLU:
    def test_lu_matches_scipy(self):

        p = lu_factorization()
        base = ArrayStore(p, {"N": 7}).snapshot()
        store, _ = execute(p, {"N": 7}, arrays=base)
        a = store.arrays["A"]
        L = np.tril(a, -1) + np.eye(7)
        U = np.triu(a)
        assert np.allclose(L @ U, base["A"], rtol=1e-8)


class TestSolves:
    def test_triangular_solve(self):
        p = triangular_solve()
        base = ArrayStore(p, {"N": 8}).snapshot()
        L = np.tril(base["L"]) + np.eye(8) * 8  # well-conditioned lower tri
        init = {"L": np.tril(L), "B": base["B"].copy()}
        store, _ = execute(p, {"N": 8}, arrays={"L": init["L"], "B": init["B"]})
        x = store.arrays["B"]
        assert np.allclose(init["L"] @ x, base["B"], rtol=1e-8)

    def test_forward_substitution_agrees_with_trisolve(self):
        pc = triangular_solve()
        pr = forward_substitution()
        base = ArrayStore(pc, {"N": 8}).snapshot()
        L = np.tril(base["L"]) + np.eye(8) * 8
        sc, _ = execute(pc, {"N": 8}, arrays={"L": L, "B": base["B"].copy()})
        sr, _ = execute(pr, {"N": 8}, arrays={"L": L, "B": base["B"].copy()})
        assert np.allclose(sc.arrays["B"], sr.arrays["B"], rtol=1e-9)


class TestMatmul:
    def test_matches_numpy(self):
        p = matmul()
        base = ArrayStore(p, {"N": 6}).snapshot()
        init = {"A": base["A"], "B": base["B"], "C": np.zeros((6, 6))}
        store, _ = execute(p, {"N": 6}, arrays=init)
        assert np.allclose(store.arrays["C"], base["A"] @ base["B"], rtol=1e-9)


class TestGenerator:
    def test_deterministic(self):
        from repro.kernels import random_program

        a = random_program(17)
        b = random_program(17)
        assert str(a) == str(b)

    def test_distinct_seeds_distinct_programs(self):
        from repro.kernels import random_program

        outs = {str(random_program(s)) for s in range(8)}
        assert len(outs) >= 6

    @pytest.mark.parametrize("seed", range(10))
    def test_generated_programs_execute(self, seed):
        from repro.kernels import random_program

        p = random_program(seed)
        store, t = execute(p, {"N": 5}, trace=True)
        assert len(t) >= 1

    def test_deterministic_across_processes(self):
        """Same seed ⇒ identical printed program even in a fresh process
        (guards against module-level random.* or hash-salt leakage that
        would make --jobs fuzzing irreproducible per-seed)."""
        import subprocess
        import sys

        from repro.kernels import random_program

        code = (
            "from repro.kernels import random_program\n"
            "from repro.ir import program_to_str\n"
            "for s in (0, 7, 23):\n"
            "    for shape in ('mixed', 'perfect', 'deep', 'triangular', 'multi'):\n"
            "        print(program_to_str(random_program(s, shape=shape)))\n"
            "        print('===')\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
            env={**os.environ, "PYTHONPATH": _src_path(), "PYTHONHASHSEED": "random"},
        ).stdout
        expected = []
        for s in (0, 7, 23):
            for shape in ("mixed", "perfect", "deep", "triangular", "multi"):
                expected.append(program_to_str(random_program(s, shape=shape)))
                expected.append("===")
        assert out.rstrip("\n") == "\n".join(expected)

    def test_array_init_deterministic_across_processes(self):
        """default_init must not depend on the per-process str hash salt."""
        import subprocess
        import sys

        from repro.interp.executor import default_init

        code = (
            "from repro.interp.executor import default_init\n"
            "print(repr(default_init('R0', (3,)).tolist()))\n"
        )
        outs = {
            subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                check=True,
                env={**os.environ, "PYTHONPATH": _src_path(), "PYTHONHASHSEED": seed},
            ).stdout
            for seed in ("0", "1", "random")
        }
        assert len(outs) == 1
        assert outs.pop().strip() == repr(default_init("R0", (3,)).tolist())

    @pytest.mark.parametrize("seed", range(5))
    def test_generated_programs_analyzable(self, seed):
        from repro.dependence import analyze_dependences
        from repro.instance import Layout

        p = random_program_import()(seed)
        lay = Layout(p)
        m = analyze_dependences(p)
        assert m.layout is lay or m.layout.dimension == lay.dimension


def random_program_import():
    from repro.kernels import random_program

    return random_program
