"""Static cost model: feature extraction, discrimination between loop
orders, and the realize() generate+simplify pipeline."""

import pytest

from repro.ir import program_to_str
from repro.kernels import cholesky, matmul
from repro.legality.check import check_legality
from repro.tune.cost import (
    CAPACITY_LINES, MODEL_PARAM, model_params_for, realize, score_candidate,
)
from repro.tune.space import (
    enumerate_candidates, identity_candidate, lead_candidates, make_context,
)
from repro.util.errors import ReproError


class TestModelParams:
    def test_clamped_to_cap(self):
        assert model_params_for(("N",), {"N": 4000}) == {"N": MODEL_PARAM}

    def test_small_sizes_kept(self):
        assert model_params_for(("N",), {"N": 4}) == {"N": 4}

    def test_missing_params_default_to_cap(self):
        assert model_params_for(("N", "M"), {}) == {"N": MODEL_PARAM, "M": MODEL_PARAM}


class TestRealize:
    def test_identity_realizes_to_original(self):
        # simplification must fold codegen's residual guards/hulls away,
        # or every transformed schedule would be unfairly penalized
        # against the guard-free original (see cost.realize docstring)
        prog = cholesky()
        ctx = make_context(prog)
        realized = realize(identity_candidate(ctx))
        assert program_to_str(realized, header=False) == program_to_str(
            prog, header=False
        )

    def test_illegal_candidate_raises_before_execution(self):
        ctx = make_context(cholesky())
        illegal = [
            c for c in enumerate_candidates(cholesky())
            if not check_legality(ctx.layout, c.matrix, ctx.deps).legal
        ]
        assert illegal, "expected some illegal candidates in the space"
        with pytest.raises(ReproError):
            realize(illegal[0])


class TestScoring:
    def test_report_features_complete(self):
        ctx = make_context(matmul())
        rep = score_candidate(identity_candidate(ctx))
        feats = rep.features()
        assert set(feats) == {
            "score", "locality", "vectorized_loops", "fallback_loops",
            "doall_loops", "total_loops", "instances", "footprint_lines",
        }
        assert 0.0 <= rep.locality <= 1.0
        assert rep.instances > 0

    def test_discriminates_cholesky_orders(self):
        # the model working set exceeds the model cache by construction,
        # so loop orders must separate: the left-looking L-led order has
        # strictly better locality than the right-looking default
        ctx = make_context(cholesky())
        ident = score_candidate(identity_candidate(ctx))
        lead_l = [c for c in lead_candidates(ctx) if c.lead == "L"][0]
        assert score_candidate(lead_l).locality > ident.locality

    def test_capacity_affects_locality(self):
        ctx = make_context(cholesky())
        cand = identity_candidate(ctx)
        tight = score_candidate(cand, capacity_lines=2)
        loose = score_candidate(cand, capacity_lines=CAPACITY_LINES * 64)
        assert tight.locality < loose.locality

    def test_illegal_scoring_raises(self):
        ctx = make_context(cholesky())
        illegal = [
            c for c in enumerate_candidates(cholesky())
            if not check_legality(ctx.layout, c.matrix, ctx.deps).legal
        ]
        with pytest.raises(ReproError):
            score_candidate(illegal[0])
