"""Kendall tau and the cost-rank vs measured-rank report."""

from __future__ import annotations

import pytest

from repro.tune.ranking import (
    RankedCandidate, RankReport, kendall_tau, rank_report,
)


class TestKendallTau:
    def test_perfect_agreement(self):
        assert kendall_tau([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_perfect_disagreement(self):
        assert kendall_tau([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_no_correlation(self):
        # two concordant, two discordant, two mixed pairs
        assert kendall_tau([1, 2, 3, 4], [2, 1, 4, 3]) == pytest.approx(1 / 3)

    def test_tie_correction(self):
        # tau-b shrinks the denominator for tied pairs instead of
        # treating ties as disagreement
        tau = kendall_tau([1, 1, 2], [1, 2, 3])
        assert tau == pytest.approx(2 / (2 * 3) ** 0.5)

    def test_undefined_cases(self):
        assert kendall_tau([], []) is None
        assert kendall_tau([1], [1]) is None
        assert kendall_tau([5, 5, 5], [1, 2, 3]) is None  # x fully tied
        assert kendall_tau([1, 2, 3], [7, 7, 7]) is None  # y fully tied

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            kendall_tau([1, 2], [1])


class TestRankReport:
    def rows(self):
        # model's favourite (highest score) is the slowest: tau = -1
        return [
            {"description": "a", "score": 3.0, "seconds": 0.9},
            {"description": "b", "score": 2.0, "seconds": 0.5},
            {"description": "c", "score": 1.0, "seconds": 0.1},
        ]

    def test_ranks_and_tau(self):
        rep = rank_report(self.rows())
        by_desc = {c.description: c for c in rep.candidates}
        assert (by_desc["a"].cost_rank, by_desc["a"].measured_rank) == (1, 3)
        assert (by_desc["c"].cost_rank, by_desc["c"].measured_rank) == (3, 1)
        assert rep.tau == pytest.approx(-1.0)

    def test_ties_share_smallest_rank(self):
        rep = rank_report(
            [
                {"description": "a", "score": 2.0, "seconds": 0.1},
                {"description": "b", "score": 2.0, "seconds": 0.2},
                {"description": "c", "score": 1.0, "seconds": 0.3},
            ]
        )
        cost_ranks = [c.cost_rank for c in rep.candidates]
        assert cost_ranks == [1, 1, 3]

    def test_rows_missing_numbers_excluded(self):
        rep = rank_report(
            [
                {"description": "scored only", "score": 1.0, "seconds": None},
                {"description": "measured", "score": 2.0, "seconds": 0.2},
                {"description": "also measured", "score": 3.0, "seconds": 0.1},
            ]
        )
        assert {c.description for c in rep.candidates} == {"measured", "also measured"}
        assert rep.tau == pytest.approx(1.0)

    def test_attr_objects_accepted(self):
        class Row:
            def __init__(self, description, score, seconds):
                self.description = description
                self.score = score
                self.seconds = seconds

        rep = rank_report([Row("x", 2.0, 0.1), Row("y", 1.0, 0.2)])
        assert [c.description for c in rep.candidates] == ["x", "y"]
        assert rep.tau == pytest.approx(1.0)

    def test_empty_report(self):
        rep = rank_report([])
        assert rep.candidates == () and rep.tau is None

    def test_json_round_trip(self):
        rep = rank_report(self.rows())
        clone = RankReport.from_json(rep.to_json())
        assert clone == rep
        assert all(isinstance(c, RankedCandidate) for c in clone.candidates)

    def test_driver_persists_ranking_in_cache_entry(self, tmp_path):
        from repro.kernels import simplified_cholesky
        from repro.tune import TuneStore, load_tuned, tune

        program = simplified_cholesky()
        store = TuneStore(tmp_path)
        tune(program, {"N": 8}, store=store, backend="source",
             beam_width=2, depth=1, top_k=2)
        entry = load_tuned(program, {"N": 8}, store=store)
        ranking = entry["ranking"]
        assert ranking["candidates"], "no scored+measured candidate persisted"
        for c in ranking["candidates"]:
            assert {"description", "score", "seconds",
                    "cost_rank", "measured_rank"} <= set(c)
        measured = {c["measured_rank"] for c in ranking["candidates"]}
        assert 1 in measured  # somebody is the fastest
