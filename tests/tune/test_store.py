"""Persistent tuning cache: content addressing, atomicity, corruption
tolerance, bounded size, and the env/CLI directory override."""

import json
import os

import pytest

from repro import obs
from repro.ir import parse_program
from repro.kernels import cholesky, simplified_cholesky
from repro.tune.store import DEFAULT_DIR, ENV_DIR, STORE_SCHEMA, TuneStore


@pytest.fixture()
def store(tmp_path):
    return TuneStore(tmp_path / "cache")


class TestKeying:
    def test_deterministic(self):
        k1 = TuneStore.key_for(cholesky(), {"N": 40})
        k2 = TuneStore.key_for(cholesky(), {"N": 40})
        assert k1 == k2
        assert len(k1) == 64  # sha256 hex

    def test_program_text_changes_key(self):
        assert TuneStore.key_for(cholesky(), {"N": 40}) != TuneStore.key_for(
            simplified_cholesky(), {"N": 40}
        )

    def test_params_change_key(self):
        assert TuneStore.key_for(cholesky(), {"N": 40}) != TuneStore.key_for(
            cholesky(), {"N": 41}
        )

    def test_version_changes_key(self):
        a = TuneStore.key_for(cholesky(), {"N": 40}, version="1")
        b = TuneStore.key_for(cholesky(), {"N": 40}, version="2")
        assert a != b

    def test_name_does_not_change_key(self):
        # content addressing: same text under a different name hits
        src = "param N\nreal A(N)\ndo I = 1, N\n  S1: A(I) = A(I) + 1.0\nenddo\n"
        p1 = parse_program(src, "one")
        p2 = parse_program(src, "two")
        assert TuneStore.key_for(p1, {"N": 8}) == TuneStore.key_for(p2, {"N": 8})


class TestRoundTrip:
    def test_put_get(self, store):
        key = TuneStore.key_for(cholesky(), {"N": 8})
        path = store.put(key, {"winner": {"description": "x"}})
        assert path.exists()
        entry = store.get(key)
        assert entry["winner"]["description"] == "x"
        assert entry["schema"] == STORE_SCHEMA
        assert entry["key"] == key

    def test_missing_key_is_none(self, store):
        assert store.get("0" * 64) is None

    def test_no_partial_files_after_put(self, store):
        store.put("a" * 64, {"x": 1})
        names = os.listdir(store.root)
        assert names == ["a" * 64 + ".json"]

    def test_clear_and_len(self, store):
        store.put("a" * 64, {})
        store.put("b" * 64, {})
        assert len(store) == 2
        store.clear()
        assert len(store) == 0


class TestCorruption:
    def test_bad_json_dropped_and_unlinked(self, store):
        key = "c" * 64
        store.put(key, {"x": 1})
        store.path_for(key).write_text("{not json")
        with obs.session() as sess:
            assert store.get(key) is None
            assert sess.counters.get("tune.cache.corrupt") == 1
        assert not store.path_for(key).exists()

    def test_schema_mismatch_dropped(self, store):
        key = "d" * 64
        store.put(key, {"x": 1})
        entry = json.loads(store.path_for(key).read_text())
        entry["schema"] = STORE_SCHEMA + 999
        store.path_for(key).write_text(json.dumps(entry))
        assert store.get(key) is None
        assert not store.path_for(key).exists()

    def test_non_dict_payload_dropped(self, store):
        key = "e" * 64
        store.path_for(key).parent.mkdir(parents=True, exist_ok=True)
        store.path_for(key).write_text(json.dumps([1, 2, 3]))
        assert store.get(key) is None


class TestEviction:
    def test_oldest_evicted_beyond_cap(self, tmp_path):
        store = TuneStore(tmp_path, max_entries=3)
        keys = [ch * 64 for ch in "abcde"]
        for i, k in enumerate(keys):
            store.put(k, {"i": i})
            # distinct mtimes so eviction order is well-defined
            os.utime(store.path_for(k), (1000 + i, 1000 + i))
        assert len(store) == 3
        assert store.get(keys[0]) is None
        assert store.get(keys[-1]) is not None


class TestDirectoryResolution:
    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_DIR, str(tmp_path / "envcache"))
        store = TuneStore()
        assert str(store.root) == str(tmp_path / "envcache")

    def test_default_dir(self, monkeypatch, tmp_path):
        monkeypatch.delenv(ENV_DIR, raising=False)
        monkeypatch.chdir(tmp_path)
        assert TuneStore().root.name == DEFAULT_DIR
