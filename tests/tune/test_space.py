"""Candidate enumeration: loop orders via completion, elementary
transformations, structural variants, and canonical-form dedup."""

import pytest

from repro.interp.equivalence import outputs_close
from repro.interp.executor import execute
from repro.kernels import cholesky, gemver_like, matmul, simplified_cholesky, sweep_pair
from repro.legality.check import check_legality
from repro.linalg import IntMatrix
from repro.tune.space import (
    Candidate, base_contexts, compose_candidate, dedupe, elementary_candidates,
    enumerate_candidates, identity_candidate, lead_candidates, make_context,
    skew_factors_from_deps,
)


class TestEnumeration:
    def test_identity_first(self):
        cands = enumerate_candidates(simplified_cholesky())
        assert cands[0].kind == "identity"
        assert cands[0].description == "default order"
        assert cands[0].matrix == IntMatrix.identity(cands[0].matrix.shape[0])

    def test_no_duplicates(self):
        cands = enumerate_candidates(cholesky())
        keys = [c.canonical_key() for c in cands]
        assert len(keys) == len(set(keys))

    def test_covers_all_kinds(self):
        kinds = {c.kind for c in enumerate_candidates(cholesky())}
        assert {"identity", "order", "permute", "reverse", "skew"} <= kinds

    def test_lead_candidates_match_search(self):
        # the legal lead loops of cholesky are K and L (pinned by the
        # original search_loop_orders tests this space generalizes)
        ctx = make_context(cholesky())
        leads = {c.lead for c in lead_candidates(ctx)}
        assert leads == {"K", "L"}

    def test_include_structural_false_single_context(self):
        cands = enumerate_candidates(sweep_pair(), include_structural=False)
        assert all(c.context.origin == () for c in cands)


class TestStructuralVariants:
    def test_jam_variant_for_sweep_pair(self):
        origins = [c.origin for c in base_contexts(sweep_pair())]
        assert ("jam(0)",) in origins

    def test_distribution_variants_for_gemver(self):
        origins = [c.origin for c in base_contexts(gemver_like())]
        assert any("distribute" in o[0] for o in origins if o)

    def test_structural_variants_preserve_semantics(self):
        # every admitted context must compute the same outputs
        program = sweep_pair()
        params = {p: 8 for p in program.params}
        ref = execute(program, params)[0].snapshot()
        for ctx in base_contexts(program)[1:]:
            out = execute(ctx.program, params)[0].snapshot()
            assert outputs_close(ref, out, 0.0), ctx.origin

    def test_matmul_has_no_variants(self):
        assert len(base_contexts(matmul())) == 1


class TestSkewFactors:
    def test_always_includes_unit(self):
        ctx = make_context(matmul())
        fs = skew_factors_from_deps(ctx.deps)
        assert 1 in fs and -1 in fs

    def test_symmetric(self):
        ctx = make_context(cholesky())
        fs = skew_factors_from_deps(ctx.deps)
        assert all(-f in fs for f in fs)


class TestComposition:
    def test_compose_is_matrix_product(self):
        ctx = make_context(cholesky())
        elems = elementary_candidates(ctx)
        a, b = elems[0], elems[1]
        c = compose_candidate(a, b)
        assert c.matrix == b.matrix @ a.matrix
        assert c.steps == a.steps + b.steps

    def test_compose_requires_same_context(self):
        c1 = identity_candidate(make_context(cholesky()))
        c2 = identity_candidate(make_context(matmul()))
        with pytest.raises(AssertionError):
            compose_candidate(c1, c2)

    def test_dedupe_folds_involutions(self):
        # reverse twice == identity; dedupe keeps one representative
        ctx = make_context(simplified_cholesky())
        rev = [c for c in elementary_candidates(ctx) if c.kind == "reverse"][0]
        twice = compose_candidate(rev, rev)
        kept = dedupe([identity_candidate(ctx), rev, twice])
        assert len(kept) == 2

    def test_completed_leads_are_legal(self):
        # the §6 completion procedure must only produce legal matrices
        ctx = make_context(cholesky())
        for cand in lead_candidates(ctx):
            assert check_legality(ctx.layout, cand.matrix, ctx.deps).legal


class TestCandidateIdentity:
    def test_description_includes_origin(self):
        ctx = base_contexts(sweep_pair())[1]
        cand = identity_candidate(ctx)
        assert cand.description == "jam(0)"

    def test_canonical_key_distinguishes_contexts(self):
        ctxs = base_contexts(sweep_pair())
        k1 = identity_candidate(ctxs[0]).canonical_key()
        k2 = identity_candidate(ctxs[1]).canonical_key()
        assert k1 != k2
