"""Tiled search space, the candidate cap, and winner selection.

These pin the PR-7 search-space contract: tiled contexts and blocked
lead candidates enter enumeration legally; every stage respects the
``max_candidates`` cap (emitting the ``tune/truncated`` decision event
rather than silently searching a prefix); the cost model's footprint
term prefers blocked schedules once the working set outgrows the model
cache; and the driver's stratification + tie-break keep blocked
candidates measurable without ever reporting a winner slower than the
measured default.
"""

import pytest

from repro import obs
from repro.kernels import cholesky, trmm
from repro.transform import TILE_LADDER
from repro.tune.cost import footprint_lines, score_candidate
from repro.tune.driver import (
    BLOCKED_SLOTS, TIE_BAND, TunedRow, _is_blocked, _pick_winner, _stratified,
)
from repro.tune.space import (
    DEFAULT_MAX_CANDIDATES, blocked_lead_candidates, cap_candidates,
    enumerate_candidates, make_context, resolve_max_candidates,
    tiled_contexts,
)


def _row(description, seconds, score=None, candidate=None):
    return TunedRow(
        description=description, kind="permute", steps=("x",),
        score=score, seconds=seconds, ok=True, error="",
        baseline=False, candidate=candidate,
    )


class TestTiledContexts:
    def test_one_context_per_ladder_size_at_least(self):
        ctxs = tiled_contexts(trmm(), tile_sizes=TILE_LADDER)
        sizes = {c.tile[1] for c in ctxs if c.tile}
        assert sizes == set(TILE_LADDER)

    def test_contexts_are_marked_tiled(self):
        for ctx in tiled_contexts(trmm(), tile_sizes=(16,)):
            assert ctx.is_tiled
            assert ctx.origin  # records the strip-mine provenance

    def test_untiled_context_is_not_tiled(self):
        assert not make_context(trmm()).is_tiled

    def test_blocked_leads_are_legal(self):
        """Every blocked lead candidate must already have passed the
        Theorem-2 check — the driver executes them unconditionally."""
        from repro.legality import check_legality

        for ctx in tiled_contexts(trmm(), tile_sizes=(16, 32)):
            for cand in blocked_lead_candidates(ctx):
                report = check_legality(ctx.layout, cand.matrix, ctx.deps)
                assert report.legal, cand.describe()

    def test_enumeration_includes_blocked_kind(self):
        cands = enumerate_candidates(trmm(), tile_sizes=(16,))
        assert any(_is_blocked(c) for c in cands)


class TestCandidateCap:
    def test_resolve_precedence(self, monkeypatch):
        monkeypatch.delenv("REPRO_TUNE_MAX", raising=False)
        assert resolve_max_candidates(None) == DEFAULT_MAX_CANDIDATES
        assert resolve_max_candidates(7) == 7
        monkeypatch.setenv("REPRO_TUNE_MAX", "13")
        assert resolve_max_candidates(None) == 13
        assert resolve_max_candidates(5) == 5  # explicit beats env
        monkeypatch.setenv("REPRO_TUNE_MAX", "garbage")
        assert resolve_max_candidates(None) == DEFAULT_MAX_CANDIDATES

    def test_enumerate_respects_cap(self):
        capped = enumerate_candidates(
            cholesky(), tile_sizes=(4,), max_candidates=10)
        assert len(capped) == 10

    def test_truncation_emits_decision_event(self):
        full = enumerate_candidates(cholesky(), tile_sizes=(4,))
        assert len(full) > 5
        mem = obs.MemorySink()
        with obs.session(mem) as sess:
            got = cap_candidates(list(full), 5, "enumerate")
            assert sess.counters.get("tune.candidates.truncated") == len(full) - 5
        assert len(got) == 5
        (ev,) = mem.events_for("tune", "truncated")
        assert ev.attrs["stage"] == "enumerate"
        assert ev.attrs["dropped"] == len(full) - 5

    def test_no_event_under_cap(self):
        mem = obs.MemorySink()
        cands = enumerate_candidates(cholesky())
        with obs.session(mem):
            cap_candidates(list(cands), len(cands) + 1, "enumerate")
        assert not mem.events_for("tune", "truncated")


class TestFootprint:
    def test_blocked_footprint_smaller_than_untiled(self):
        """The whole point of the ladder: at a fixed model size the
        per-tile working set of a blocked nest is smaller than the full
        working set of the untiled nest."""
        p = trmm()
        tiled = min(
            tiled_contexts(p, tile_sizes=(16,)),
            key=lambda c: c.tile[1],
        )
        full = footprint_lines(p, {"N": 96})
        blocked = footprint_lines(tiled.program, {"N": 96})
        assert full is not None and blocked is not None
        assert blocked < full

    def test_score_carries_footprint_feature(self):
        ctx = make_context(trmm())
        cand = enumerate_candidates(trmm())[0]
        report = score_candidate(cand, {"N": 64})
        assert report.footprint_lines is not None


class TestStratification:
    def _ranked(self, program, tile_sizes=(16,)):
        from repro.legality import check_legality

        cands = [
            c for c in enumerate_candidates(program, tile_sizes=tile_sizes)
            if check_legality(c.context.layout, c.matrix, c.context.deps).legal
        ]
        return [(c, score_candidate(c, {"N": 64})) for c in cands]

    def test_reserves_blocked_slots(self):
        ranked = self._ranked(trmm())
        # force every blocked candidate out of the head
        ranked.sort(key=lambda item: _is_blocked(item[0]))
        head = _stratified(ranked, 2, BLOCKED_SLOTS)
        assert len(head) <= 2 + BLOCKED_SLOTS
        assert any(_is_blocked(c) for c, _ in head)

    def test_no_extra_slots_when_blocked_already_in_head(self):
        ranked = self._ranked(trmm())
        ranked.sort(key=lambda item: not _is_blocked(item[0]))
        head = _stratified(ranked, 2, BLOCKED_SLOTS)
        assert head == ranked[:2]

    def test_zero_slots_disables_reservation(self):
        ranked = self._ranked(trmm())
        ranked.sort(key=lambda item: _is_blocked(item[0]))
        assert _stratified(ranked, 2, 0) == ranked[:2]


class TestPickWinner:
    def test_rows_slower_than_baseline_ineligible(self):
        rows = [
            _row("default", 1.0),
            _row("fast-but-wrongly-sampled", 0.5),
        ]
        assert _pick_winner(rows, 0.6).description == "fast-but-wrongly-sampled"
        assert _pick_winner(rows, 0.4).description == "fast-but-wrongly-sampled"

    def test_tie_band_resolved_by_static_score(self):
        """Two rows inside the jitter band: the one the cost model
        prefers wins, even though it sampled marginally slower."""
        rows = [
            _row("lucky-sample", 1.00, score=0.1),
            _row("model-preferred", 1.00 * TIE_BAND * 0.999, score=0.9),
        ]
        assert _pick_winner(rows, 10.0).description == "model-preferred"

    def test_outside_band_fastest_wins_regardless_of_score(self):
        rows = [
            _row("fast", 1.0, score=0.0),
            _row("slow-high-score", 1.5, score=1.0),
        ]
        assert _pick_winner(rows, 10.0).description == "fast"

    def test_empty_measurable_returns_none(self):
        assert _pick_winner([], 1.0) is None

    def test_all_slower_than_baseline_falls_back(self):
        rows = [_row("a", 2.0), _row("b", 3.0)]
        assert _pick_winner(rows, 1.0).description == "a"
