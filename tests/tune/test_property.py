"""Property tests for the autotuner's two safety contracts:

1. every candidate the tuner *executes* (for scoring or measurement)
   passed the Theorem-2 legality check — verified independently here by
   re-running the check over the driver's audit trail on random nests;
2. the tuner's winner computes bit-identical outputs to the reference
   interpreter on the bundled kernels (the ``source`` backend is
   bit-exact, so no tolerance is needed).
"""

import numpy as np
import pytest

from repro.dependence import analyze_dependences
from repro.instance import Layout
from repro.interp.executor import execute
from repro.ir import parse_program
from repro.kernels import (
    cholesky, lu_factorization, matmul, random_program, running_example,
    simplified_cholesky, triangular_solve,
)
from repro.legality.check import check_legality
from repro.linalg import IntMatrix
from repro.tune import TuneStore, tune
from repro.tune.cost import realize

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

FAST = dict(backend="source", beam_width=2, depth=1, top_k=2, use_cache=False)

BUNDLED = [
    simplified_cholesky, cholesky, matmul, triangular_solve,
    lu_factorization, running_example,
]


def _assert_audit_legal(result):
    assert result.executed, "tuner executed nothing"
    for record in result.executed:
        prog = parse_program(record["program"], "audit")
        matrix = IntMatrix([[int(x) for x in row] for row in record["matrix"]])
        report = check_legality(Layout(prog), matrix, analyze_dependences(prog))
        assert report.legal, (
            f"executed an unchecked candidate: {record['description']} "
            f"at stage {record['stage']}"
        )


class TestOnlyLegalCandidatesExecute:
    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        shape=st.sampled_from(["mixed", "perfect", "triangular"]),
    )
    def test_random_nests(self, seed, shape):
        # small nests (depth/children 2) keep the space in the dozens so
        # six examples stay inside the CI budget; the audit contract is
        # size-independent
        program = random_program(seed, shape=shape, max_depth=2, max_children=2)
        params = {p: 5 for p in program.params}
        result = tune(program, params, include_structural=False, **FAST)
        _assert_audit_legal(result)

    @pytest.mark.parametrize("factory", BUNDLED, ids=lambda f: f.__name__)
    def test_bundled_kernels(self, factory):
        program = factory()
        params = {p: 8 for p in program.params}
        result = tune(program, params, **FAST)
        _assert_audit_legal(result)


class TestWinnerBitIdentical:
    @pytest.mark.parametrize("factory", BUNDLED, ids=lambda f: f.__name__)
    def test_winner_matches_reference_exactly(self, factory):
        from repro.backend import run as backend_run

        program = factory()
        params = {p: 8 for p in program.params}
        result = tune(program, params, **FAST)
        assert result.best is not None
        ref = execute(program, params)[0].snapshot()
        winner = result.best
        if winner.baseline:
            tuned_prog = program
        else:
            tuned_prog = realize(winner.candidate)
        out = backend_run(tuned_prog, params, backend="source").snapshot()
        for name in ref:
            assert np.array_equal(out[name], ref[name]), (
                f"{factory.__name__}: array {name} diverged under "
                f"{winner.description}"
            )


class TestCacheRoundTripProperty:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_key_stability_under_reparse(self, seed):
        # parse(print(p)) must hit the same cache key — content
        # addressing depends on the printer being a canonical form
        from repro.ir import program_to_str

        program = random_program(seed)
        params = {p: 5 for p in program.params}
        reparsed = parse_program(program_to_str(program), "other_name")
        assert TuneStore.key_for(program, params) == TuneStore.key_for(
            reparsed, params
        )
