"""The beam-search driver: pruning before execution, measured ranking,
cache round-trip, and the cache hit/miss counters."""

import numpy as np
import pytest

from repro import obs
from repro.dependence import analyze_dependences
from repro.instance import Layout
from repro.interp.executor import execute
from repro.ir import parse_program
from repro.kernels import simplified_cholesky
from repro.legality.check import check_legality
from repro.linalg import IntMatrix
from repro.tune import TuneStore, apply_entry, load_tuned, tune
from repro.util.errors import TuneError

PARAMS = {"N": 10}
FAST = dict(backend="source", beam_width=2, depth=1, top_k=2, repeat=3)


@pytest.fixture()
def store(tmp_path):
    return TuneStore(tmp_path / "cache")


class TestSearch:
    def test_finds_a_winner(self, store):
        res = tune(simplified_cholesky(), PARAMS, store=store, **FAST)
        assert res.ok
        assert res.best is not None
        assert res.best.seconds is not None
        assert not res.from_cache
        assert res.enumerated > res.scored  # something was pruned or deduped
        assert res.pruned > 0

    def test_baseline_always_measured(self, store):
        res = tune(simplified_cholesky(), PARAMS, store=store, **FAST)
        baselines = [r for r in res.rows if r.baseline]
        assert len(baselines) == 1
        assert baselines[0].description == "default order"
        assert res.baseline_seconds == baselines[0].seconds

    def test_winner_never_slower_than_default(self, store):
        res = tune(simplified_cholesky(), PARAMS, store=store, **FAST)
        assert res.best.seconds <= res.baseline_seconds

    def test_every_executed_candidate_was_legal(self, store):
        # re-verify the audit trail independently of the driver
        res = tune(simplified_cholesky(), PARAMS, store=store, **FAST)
        assert res.executed
        for record in res.executed:
            prog = parse_program(record["program"], "audit")
            layout = Layout(prog)
            deps = analyze_dependences(prog)
            matrix = IntMatrix([[int(x) for x in row] for row in record["matrix"]])
            assert check_legality(layout, matrix, deps).legal, record["description"]

    def test_default_params_applied(self, store):
        from repro.tune.driver import DEFAULT_PARAM

        res = tune(simplified_cholesky(), None, store=store, **FAST)
        assert res.params == {"N": DEFAULT_PARAM}


class TestCache:
    def test_miss_then_hit_counters(self, store):
        with obs.session() as sess:
            tune(simplified_cholesky(), PARAMS, store=store, **FAST)
            assert sess.counters.get("tune.cache.miss") == 1
            assert "tune.cache.hit" not in sess.counters
        with obs.session() as sess:
            res = tune(simplified_cholesky(), PARAMS, store=store, **FAST)
            assert sess.counters.get("tune.cache.hit") == 1
            assert res.from_cache
            # a cache hit must skip the search and every execution
            assert "tune.candidates.scored" not in sess.counters
            assert "tune.candidates.measured" not in sess.counters

    def test_warm_result_matches_cold(self, store):
        cold = tune(simplified_cholesky(), PARAMS, store=store, **FAST)
        warm = tune(simplified_cholesky(), PARAMS, store=store, **FAST)
        assert warm.from_cache
        assert warm.best.description == cold.best.description
        assert warm.best.seconds == cold.best.seconds
        assert [r.description for r in warm.rows] == [r.description for r in cold.rows]

    def test_force_researches(self, store):
        tune(simplified_cholesky(), PARAMS, store=store, **FAST)
        with obs.session() as sess:
            res = tune(simplified_cholesky(), PARAMS, store=store, force=True, **FAST)
            assert not res.from_cache
            assert sess.counters.get("tune.cache.miss") == 1

    def test_use_cache_false_writes_nothing(self, store):
        res = tune(simplified_cholesky(), PARAMS, store=store, use_cache=False, **FAST)
        assert not res.from_cache
        assert len(store) == 0
        assert res.cache_path is None

    def test_params_change_is_a_miss(self, store):
        tune(simplified_cholesky(), PARAMS, store=store, **FAST)
        res = tune(simplified_cholesky(), {"N": 11}, store=store, **FAST)
        assert not res.from_cache


class TestApplyEntry:
    def test_apply_reproduces_reference_outputs(self, store):
        program = simplified_cholesky()
        res = tune(program, PARAMS, store=store, **FAST)
        entry = load_tuned(program, PARAMS, store=store)
        assert entry is not None
        tuned = apply_entry(entry)
        ref = execute(program, PARAMS)[0].snapshot()
        out = execute(tuned, PARAMS)[0].snapshot()
        for name in ref:
            np.testing.assert_allclose(out[name], ref[name], rtol=1e-12)

    def test_load_tuned_miss_is_none(self, store):
        assert load_tuned(simplified_cholesky(), {"N": 999}, store=store) is None

    def test_apply_entry_without_winner_raises(self):
        with pytest.raises(TuneError):
            apply_entry({"rows": []})
