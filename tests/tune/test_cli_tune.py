"""CLI surface of the autotuner: ``repro tune``, ``run --tuned``,
``report --tuned``, and the pinned non-zero exit codes of ``bench`` and
``tune`` on error rows."""

import json

import pytest

from repro.cli import main
from repro.util.errors import BackendError, ReproError

KERNEL = "simplified_cholesky"


@pytest.fixture()
def cache(tmp_path):
    return str(tmp_path / "cache")


def _tune_args(cache, *extra):
    return [
        "tune", KERNEL, "-p", "N=10", "--backend", "source",
        "--beam", "2", "--depth", "1", "--top-k", "2",
        "--cache-dir", cache, *extra,
    ]


class TestTuneVerb:
    def test_cold_run_exits_zero(self, cache, capsys):
        assert main(_tune_args(cache)) == 0
        out = capsys.readouterr().out
        assert "cache: MISS" in out
        assert "pruned" in out
        assert "winner:" in out

    def test_warm_run_hits_cache(self, cache, capsys):
        assert main(_tune_args(cache)) == 0
        capsys.readouterr()
        assert main(_tune_args(cache)) == 0
        out = capsys.readouterr().out
        assert "cache: HIT" in out
        assert "search skipped" in out

    def test_force_ignores_cache(self, cache, capsys):
        assert main(_tune_args(cache)) == 0
        capsys.readouterr()
        assert main(_tune_args(cache, "--force")) == 0
        assert "cache: MISS" in capsys.readouterr().out

    def test_json_output(self, cache, tmp_path, capsys):
        out_json = str(tmp_path / "tune.json")
        assert main(_tune_args(cache, "--json", out_json)) == 0
        payload = json.loads(open(out_json).read())
        assert payload["params"] == {"N": 10}
        assert payload["pruned"] > 0
        winners = [r for r in payload["rows"] if r["winner"]]
        assert len(winners) == 1

    def test_loop_file_argument(self, cache, tmp_path, capsys):
        f = tmp_path / "p.loop"
        f.write_text(
            "param N\nreal A(N)\ndo I = 1, N\n  S1: A(I) = A(I) + 1.0\nenddo\n"
        )
        assert main(["tune", str(f), "-p", "N=8", "--backend", "source",
                     "--cache-dir", cache]) == 0


class TestExitCodes:
    def test_tune_exits_nonzero_on_error_rows(self, cache, monkeypatch, capsys):
        import repro.tune.driver as driver

        def boom(*a, **kw):
            raise BackendError("injected measurement failure")

        monkeypatch.setattr(driver, "time_backend", boom)
        rc = main(_tune_args(cache, "--no-cache"))
        assert rc == 1
        out = capsys.readouterr().out
        assert "error: injected measurement failure" in out
        assert "winner: none" in out

    def test_bench_exits_nonzero_on_error_rows(self, monkeypatch, capsys):
        import repro.backend.runtime as runtime

        real_run = runtime.run

        def flaky(program, params=None, arrays=None, *, backend="source", **kw):
            if backend == "source-vec":
                raise BackendError("injected backend failure")
            return real_run(program, params, arrays, backend=backend, **kw)

        monkeypatch.setattr(runtime, "run", flaky)
        rc = main(["bench", KERNEL, "-p", "N=8"])
        assert rc == 1
        assert "error: injected backend failure" in capsys.readouterr().out

    def test_bench_all_ok_exits_zero(self, capsys):
        assert main(["bench", KERNEL, "-p", "N=8"]) == 0


class TestTunedFlag:
    def test_run_tuned_applies_winner(self, cache, capsys):
        assert main(_tune_args(cache)) == 0
        capsys.readouterr()
        rc = main(["run", KERNEL, "--tuned", "-p", "N=10", "--cache-dir", cache])
        assert rc == 0
        out = capsys.readouterr().out
        assert "applying tuned schedule:" in out
        assert "A =" in out

    def test_run_tuned_without_entry_fails(self, cache, capsys):
        rc = main(["run", KERNEL, "--tuned", "-p", "N=10", "--cache-dir", cache])
        assert rc == 2
        assert "no cached tuning entry" in capsys.readouterr().err

    def test_report_tuned_shows_winner(self, cache, capsys):
        assert main(_tune_args(cache)) == 0
        capsys.readouterr()
        rc = main(["report", KERNEL, "--tuned", "-p", "N=10", "--cache-dir", cache])
        assert rc == 0
        out = capsys.readouterr().out
        assert "=== tuned schedule (from cache) ===" in out
        assert "=== dependences ===" in out
