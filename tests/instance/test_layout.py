"""Unit tests for instance-vector layouts (paper §2 structure)."""

import pytest

from repro.instance import EdgeCoord, Layout, LoopCoord
from repro.ir import parse_program
from repro.util.errors import LayoutError


class TestSimplifiedCholeskyLayout:
    """The §3 running example: layout must be [I, e2, e1, J]."""

    def test_dimension(self, simp_chol_layout):
        assert simp_chol_layout.dimension == 4

    def test_coordinate_order(self, simp_chol_layout):
        kinds = [type(c).__name__ for c in simp_chol_layout.coords]
        assert kinds == ["LoopCoord", "EdgeCoord", "EdgeCoord", "LoopCoord"]
        # edges listed right-to-left: child 1 (the J loop) before child 0 (S1)
        assert simp_chol_layout.coords[1].child == 1
        assert simp_chol_layout.coords[2].child == 0

    def test_loop_lookup_by_var(self, simp_chol_layout):
        assert simp_chol_layout.loop_index_by_var("I") == 0
        assert simp_chol_layout.loop_index_by_var("J") == 3

    def test_padded_positions(self, simp_chol_layout):
        assert simp_chol_layout.padded_positions("S1") == [3]
        assert simp_chol_layout.padded_positions("S2") == []

    def test_pad_source_is_nearest_labeled_ancestor(self, simp_chol_layout):
        j_coord = simp_chol_layout.coords[3]
        src = simp_chol_layout.pad_source(j_coord, "S1")
        assert src is not None and src.var == "I"

    def test_common_loops(self, simp_chol_layout):
        common = simp_chol_layout.common_loop_coords("S1", "S2")
        assert [c.var for c in common] == ["I"]

    def test_edge_entries(self, simp_chol_layout):
        e_to_jloop = simp_chol_layout.coords[1]
        e_to_s1 = simp_chol_layout.coords[2]
        assert simp_chol_layout.edge_entry(e_to_jloop, "S2") == 1
        assert simp_chol_layout.edge_entry(e_to_jloop, "S1") == 0
        assert simp_chol_layout.edge_entry(e_to_s1, "S1") == 1


class TestCholeskyLayout:
    """§6: layout must be [K, e3, e2, e1, J, L, I] (7 coordinates)."""

    def test_dimension(self, chol_layout):
        assert chol_layout.dimension == 7

    def test_order(self, chol_layout):
        c = chol_layout.coords
        assert isinstance(c[0], LoopCoord) and c[0].var == "K"
        assert all(isinstance(x, EdgeCoord) for x in c[1:4])
        assert [x.var for x in c[4:]] == ["J", "L", "I"]

    def test_statement_paths(self, chol_layout):
        assert chol_layout.statement_path("S1") == (0, 0)
        assert chol_layout.statement_path("S2") == (0, 1, 0)
        assert chol_layout.statement_path("S3") == (0, 2, 0, 0)

    def test_padded_positions_of_s1(self, chol_layout):
        # S1 is only nested in K: J, L, I positions are padded
        assert chol_layout.padded_positions("S1") == [4, 5, 6]

    def test_surrounding_positions(self, chol_layout):
        assert chol_layout.surrounding_loop_positions("S3") == [0, 4, 5]


class TestSingleEdgeOptimization:
    def test_perfect_nest_has_no_edges(self):
        p = parse_program(
            "param N\nreal A(N)\ndo I = 1..N\n do J = I+1..N\n  S1: A(J) = A(J)/A(I)\n enddo\nenddo"
        )
        lay = Layout(p)
        assert lay.dimension == 2
        assert all(isinstance(c, LoopCoord) for c in lay.coords)

    def test_unoptimized_keeps_single_edges(self):
        p = parse_program(
            "param N\nreal A(N)\ndo I = 1..N\n do J = I+1..N\n  S1: A(J) = A(J)/A(I)\n enddo\nenddo"
        )
        lay = Layout(p, optimize_single_edges=False)
        # I label, edge, J label, edge = 4 coordinates (Figure 3 left)
        assert lay.dimension == 4
        assert sum(isinstance(c, EdgeCoord) for c in lay.coords) == 2


class TestErrors:
    def test_unknown_statement(self, simp_chol_layout):
        with pytest.raises(LayoutError):
            simp_chol_layout.statement_path("nope")

    def test_unknown_coord(self, simp_chol_layout):
        with pytest.raises(LayoutError):
            simp_chol_layout.index(LoopCoord((9, 9), "Z"))

    def test_ambiguous_var_lookup(self):
        p = parse_program(
            "param N\nreal A(N)\n"
            "do I = 1..N\n S1: A(I) = 1.0\nenddo\n"
            "do I = 1..N\n S2: A(I) = 2.0\nenddo"
        )
        lay = Layout(p)
        with pytest.raises(LayoutError):
            lay.loop_coord_by_var("I")

    def test_describe_readable(self, simp_chol_layout):
        text = simp_chol_layout.describe()
        assert "loop:I" in text and "edge:" in text
