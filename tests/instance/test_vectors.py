"""Unit tests for L / L⁻¹ — pinned to the paper's displayed vectors."""

import pytest

from repro.instance import (
    DynamicInstance, Layout, from_vector, identify_statement, instance_vector,
    symbolic_vector,
)
from repro.ir import parse_program
from repro.util.errors import LayoutError


def syms(layout, label):
    return [str(e) for e in symbolic_vector(layout, label)]


class TestPaperVectors:
    def test_simplified_cholesky_section3(self, simp_chol_layout):
        """§3: S1 -> [I, 0, 1, I],  S2 -> [I, 1, 0, J]."""
        assert syms(simp_chol_layout, "S1") == ["I", "0", "1", "I"]
        assert syms(simp_chol_layout, "S2") == ["I", "1", "0", "J"]

    def test_concrete_write_read_instances(self, simp_chol_layout):
        """§3: write at I_w -> [I_w, 0, 1, I_w]; read at (I_r, J_r) ->
        [I_r, 1, 0, J_r]."""
        assert instance_vector(simp_chol_layout, DynamicInstance("S1", (4,))) == (4, 0, 1, 4)
        assert instance_vector(simp_chol_layout, DynamicInstance("S2", (2, 3))) == (2, 1, 0, 3)

    def test_cholesky_section6(self, chol_layout):
        assert syms(chol_layout, "S1") == ["K", "0", "0", "1", "K", "K", "K"]
        assert syms(chol_layout, "S2") == ["K", "0", "1", "0", "K", "K", "I"]
        assert syms(chol_layout, "S3") == ["K", "1", "0", "0", "J", "L", "K"]

    def test_augmentation_example_section54(self, aug_layout):
        assert syms(aug_layout, "S1") == ["I", "0", "1", "I"]
        assert syms(aug_layout, "S2") == ["I", "1", "0", "J"]

    def test_figure3_optimized_equals_iteration_vector(self):
        """§2.2: with the single-edge optimization, instance vectors of a
        perfect nest are exactly the iteration vectors."""
        p = parse_program(
            "param N\nreal A(N)\ndo I = 1..N\n do J = I+1..N\n  S1: A(J) = A(J)/A(I)\n enddo\nenddo"
        )
        lay = Layout(p)
        assert instance_vector(lay, DynamicInstance("S1", (2, 5))) == (2, 5)

    def test_figure3_unoptimized_has_edge_entries(self):
        p = parse_program(
            "param N\nreal A(N)\ndo I = 1..N\n do J = I+1..N\n  S1: A(J) = A(J)/A(I)\n enddo\nenddo"
        )
        lay = Layout(p, optimize_single_edges=False)
        v = instance_vector(lay, DynamicInstance("S1", (2, 5)))
        assert v == (2, 1, 5, 1)


class TestInverse:
    def test_roundtrip_all_statements(self, chol_layout):
        for label, iters in (("S1", (3,)), ("S2", (2, 5)), ("S3", (1, 4, 2))):
            d = DynamicInstance(label, iters)
            v = instance_vector(chol_layout, d)
            assert from_vector(chol_layout, v) == d

    def test_identify_statement(self, simp_chol_layout):
        v = instance_vector(simp_chol_layout, DynamicInstance("S1", (7,)))
        assert identify_statement(simp_chol_layout, v) == "S1"

    def test_identify_rejects_bad_edges(self, simp_chol_layout):
        with pytest.raises(LayoutError):
            identify_statement(simp_chol_layout, (1, 1, 1, 1))

    def test_wrong_arity_rejected(self, simp_chol_layout):
        with pytest.raises(LayoutError):
            instance_vector(simp_chol_layout, DynamicInstance("S2", (1,)))

    def test_explicit_label_skips_identification(self, simp_chol_layout):
        # padded entries may be arbitrary in transformed vectors (§4.1);
        # from_vector with a label only reads the surrounding loops
        d = from_vector(simp_chol_layout, (9, 99, 99, 42), "S1")
        assert d == DynamicInstance("S1", (9,))


class TestPadding:
    def test_diagonal_embedding(self, simp_chol_layout):
        """§2: iteration I of S1 embeds at (I, I) — the diagonal."""
        v = instance_vector(simp_chol_layout, DynamicInstance("S1", (6,)))
        assert v[0] == v[3] == 6

    def test_pad_without_labeled_ancestor_is_zero(self):
        # two sibling top-level loops: each statement pads the other's
        # loop coordinate with 0 (no labeled ancestor)
        p = parse_program(
            "param N\nreal A(-9:N+9)\n"
            "do I = 1..N\n S1: A(I) = 1.0\nenddo\n"
            "do J = 1..N\n S2: A(J) = 2.0\nenddo"
        )
        lay = Layout(p)
        v1 = instance_vector(lay, DynamicInstance("S1", (3,)))
        labels = {i: c for i, c in lay.iter_coords()}
        from repro.instance import LoopCoord

        j_pos = next(i for i, c in labels.items() if isinstance(c, LoopCoord) and c.var == "J")
        assert v1[j_pos] == 0
