"""Theorem 1 as executable tests: L is one-to-one and order-preserving."""


from hypothesis import given, settings, strategies as st

from repro.instance import (
    DynamicInstance, Layout, check_order_isomorphism, program_order,
    sort_by_execution, vector_order,
)
from repro.instance.order import injectivity_violations
from repro.interp import execute
from repro.kernels import cholesky, running_example, simplified_cholesky


def all_instances(program, params):
    """Ground-truth dynamic instances from the interpreter."""
    _, trace = execute(program, params, trace=True)
    lay = Layout(program)
    out = []
    for rec in trace.records:
        order = [c.var for c in lay.surrounding_loop_coords(rec.label)]
        out.append(DynamicInstance(rec.label, tuple(rec.env[v] for v in order)))
    return out


class TestTheorem1:
    def test_running_example_order_isomorphism(self):
        p = running_example()
        insts = all_instances(p, {"N": 6})
        assert check_order_isomorphism(p, insts) == []

    def test_simplified_cholesky(self):
        p = simplified_cholesky()
        insts = all_instances(p, {"N": 6})
        assert check_order_isomorphism(p, insts) == []

    def test_full_cholesky(self):
        p = cholesky()
        insts = all_instances(p, {"N": 5})
        assert check_order_isomorphism(p, insts) == []

    def test_injectivity(self):
        for prog, params in ((running_example(), {"N": 5}), (cholesky(), {"N": 4})):
            lay = Layout(prog)
            insts = all_instances(prog, params)
            assert injectivity_violations(lay, insts) == []

    def test_sort_by_execution_matches_trace_order(self):
        p = simplified_cholesky()
        insts = all_instances(p, {"N": 5})
        lay = Layout(p)
        shuffled = list(reversed(insts))
        assert sort_by_execution(lay, shuffled) == insts


class TestProgramOrder:
    def test_syntactic_tiebreak(self):
        p = running_example()
        a = DynamicInstance("S1", (2, 3))
        b = DynamicInstance("S2", (2, 3))
        assert program_order(p, a, b) == -1
        assert program_order(p, b, a) == 1

    def test_common_loop_decides_first(self):
        p = running_example()
        s3_early = DynamicInstance("S3", (1,))
        s1_late = DynamicInstance("S1", (2, 2))
        assert program_order(p, s3_early, s1_late) == -1

    def test_vector_order_agrees(self):
        p = running_example()
        lay = Layout(p)
        a = DynamicInstance("S2", (2, 4))
        b = DynamicInstance("S3", (2,))
        assert vector_order(lay, a, b) == program_order(p, a, b)

    def test_same_statement_lex(self):
        p = simplified_cholesky()
        a = DynamicInstance("S2", (1, 5))
        b = DynamicInstance("S2", (2, 2))
        assert program_order(p, a, b) == -1


@given(st.integers(2, 5))
@settings(max_examples=4, deadline=None)
def test_theorem1_property_over_sizes(n):
    p = cholesky()
    insts = all_instances(p, {"N": n})
    assert check_order_isomorphism(p, insts) == []
