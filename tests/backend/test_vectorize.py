"""Vectorization planning: DOALL verdicts gate it, syntactic legality
conditions on subscripts/values decide slice-assignment emission, and
``_vslice`` reproduces the per-iteration index walk exactly."""

import numpy as np
import pytest

from repro.backend import doall_loop_vars, lower_program, plan_vector_loop, run
from repro.backend.lower import _vslice
from repro.interp import ArrayStore, execute
from repro.ir import parse_program
from repro.ir.ast import Loop, Statement
from repro.kernels import cholesky, gauss_seidel_1d, jacobi_1d


def inner_loop(program):
    """The unique innermost loop of a single-nest program."""
    node = program.body[0]
    while True:
        children = [c for c in node.body if isinstance(c, Loop)]
        if not children:
            return node
        node = children[0]


def plan_for(src: str):
    p = parse_program(src)
    loop = inner_loop(p)
    scope = frozenset(p.params) | {
        n.var for n in _ancestors(p.body[0], loop)
    }
    return plan_vector_loop(loop, scope, {d.name: d for d in p.arrays})


def _ancestors(root, target):
    if root is target:
        return []
    for c in root.body:
        if isinstance(c, Loop):
            below = _ancestors(c, target)
            if below is not None:
                return [root] + below
    return None


class TestDoallVerdicts:
    def test_cholesky_doall_set(self):
        assert doall_loop_vars(cholesky()) == {"I", "J", "L"}

    def test_gauss_seidel_has_none(self):
        # every loop carries a dependence as written — nothing vectorizes
        assert doall_loop_vars(gauss_seidel_1d()) == frozenset()

    def test_skewed_wavefront_inner_loop_is_doall(self):
        # The skewed+permuted Gauss-Seidel wavefront: its min/max loop
        # bounds used to make dependence analysis bail (conservatively
        # reporting nothing DOALL); multi-term BoundSet bounds now
        # translate exactly, so the genuinely parallel wavefront inner
        # loop is proven DOALL (cross-backend agreement is pinned in
        # tests/transform/test_tiling.py-style equivalence runs).
        from repro.codegen import generate_code
        from repro.dependence import analyze_dependences
        from repro.instance import Layout
        from repro.transform import compose, permutation, skew

        p = gauss_seidel_1d()
        lay = Layout(p)
        deps = analyze_dependences(p)
        t = compose(skew(lay, "I", "S", 2), permutation(lay, "S", "I"))
        g = generate_code(p, t.matrix, deps)
        assert doall_loop_vars(g.program) == {"S2"}
        low = lower_program(g.program, vectorize=True)
        assert low.vectorized_loops == 1


class TestPlanConditions:
    def test_stencil_loop_plans(self):
        plan = plan_for(
            "param N\nreal A(0:N+1)\nreal B(0:N+1)\n"
            "do I = 1..N\n  S1: A(I) = (B(I - 1) + B(I + 1)) * 0.5\nenddo"
        )
        assert plan is not None and plan.var == "I" and not plan.needs_iota

    def test_loop_var_in_value_position_needs_iota(self):
        plan = plan_for(
            "param N\nreal A(N)\n"
            "do I = 1..N\n  S1: A(I) = A(I) + f(I)\nenddo"
        )
        assert plan is not None and plan.needs_iota

    def test_scalar_read_rejected(self):
        # dependence analysis does not track scalars: must stay scalar
        assert plan_for(
            "param N\nreal A(N)\n"
            "do I = 1..N\n  S1: t = 2.0\n  S2: A(I) = t\nenddo"
        ) is None

    def test_nonaffine_subscript_rejected(self):
        assert plan_for(
            "param N\nreal A(0:N)\nreal B(0:N)\n"
            "do I = 1..N\n  S1: A(I) = B(mod(I, 2))\nenddo"
        ) is None

    def test_two_varying_dims_rejected(self):
        # A(I, I) is a diagonal, not a strided slice
        assert plan_for(
            "param N\nreal A(N, N)\n"
            "do I = 1..N\n  S1: A(I, I) = 1.0\nenddo"
        ) is None

    def test_invariant_lhs_rejected(self):
        # every iteration writes the same cell: not DOALL-shaped anyway,
        # and the LHS must vary in exactly one dimension
        assert plan_for(
            "param N\nreal A(N)\nreal B(N)\n"
            "do I = 1..N\n  S1: A(1) = B(I)\nenddo"
        ) is None

    def test_nonunit_step_rejected(self):
        p = parse_program(
            "param N\nreal A(N)\ndo I = 1..N\n  S1: A(I) = 1.0\nenddo"
        )
        loop = p.body[0]
        stepped = Loop.make(loop.var, 1, 7, list(loop.body), step=2)
        assert plan_vector_loop(
            stepped, frozenset({"N"}), {d.name: d for d in p.arrays}
        ) is None


class TestVectorizedExecution:
    @pytest.mark.parametrize("factory,params,expect_vec", [
        (cholesky, {"N": 10}, 2),
        (jacobi_1d, {"N": 12, "T": 5}, 2),
        (gauss_seidel_1d, {"N": 10, "T": 4}, 0),
    ], ids=["cholesky", "jacobi_1d", "gauss_seidel_1d"])
    def test_matches_reference_within_tolerance(self, factory, params, expect_vec):
        p = factory()
        low = lower_program(p, vectorize=True)
        assert low.vectorized_loops == expect_vec
        base = ArrayStore(p, dict(params)).snapshot()
        ref, _ = execute(p, params, arrays=base)
        vec = run(p, params, arrays=base, backend="source-vec")
        for k, a in ref.arrays.items():
            np.testing.assert_allclose(vec.arrays[k], a, rtol=1e-9, atol=1e-12)

    def test_negative_coefficient_subscript(self):
        # B(N - I) reads backwards: exercises the negative-stride slice
        src = (
            "param N\nreal A(N)\nreal B(0:N)\n"
            "do I = 1..N\n  S1: A(I) = B(N - I) + f(I)\nenddo"
        )
        p = parse_program(src)
        low = lower_program(p, vectorize=True)
        assert low.vectorized_loops == 1
        ref, _ = execute(p, {"N": 9})
        vec = run(p, {"N": 9}, backend="source-vec")
        np.testing.assert_allclose(vec.arrays["A"], ref.arrays["A"], rtol=1e-9)


class TestVsliceSemantics:
    @pytest.mark.parametrize("lo,hi,c,off", [
        (0, 5, 1, 0), (2, 7, 1, 3), (1, 4, 2, -1),
        (0, 5, -1, 5), (1, 6, -1, 6), (0, 3, -2, 6),
        (3, 2, 1, 0),  # empty range
    ])
    def test_matches_pointwise_indexing(self, lo, hi, c, off):
        arr = np.arange(40.0)
        want = [arr[c * v + off] for v in range(lo, hi + 1)]
        got = arr[_vslice(lo, hi, c, off)]
        assert got.tolist() == want

    def test_negative_stride_reaching_index_zero(self):
        # stop would be -1, which plain slicing reads as "before the
        # last element" — _vslice must map it to None
        arr = np.arange(6.0)
        got = arr[_vslice(0, 5, -1, 5)]
        assert got.tolist() == [5.0, 4.0, 3.0, 2.0, 1.0, 0.0]
