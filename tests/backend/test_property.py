"""Property tests for the lowering backend (ISSUE satellite): the
source backend is *bit-exact* on scalar paths and the vectorized
backend stays within the equivalence tolerance, across every bundled
kernel, every ``random_program`` shape, and guard-heavy generated
programs."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.backend import run
from repro.codegen import generate_code
from repro.dependence import analyze_dependences
from repro.instance import Layout
from repro.interp import ArrayStore, execute
from repro.interp.equivalence import outputs_close
from repro.kernels import gauss_seidel_1d, jacobi_1d, random_program
from repro.kernels.generator import SHAPES
from repro.transform import compose, permutation, skew
from repro.util.errors import ReproError

PARAMS = {"N": 5}


def params_for(p):
    return {name: PARAMS.get(name, 4) for name in p.params}


def assert_source_exact(p, params):
    base = ArrayStore(p, dict(params)).snapshot()
    ref, _ = execute(p, params, arrays=base)
    low = run(p, params, arrays=base, backend="source")
    for k, a in ref.arrays.items():
        assert np.array_equal(low.arrays[k], a), f"array {k} not bit-identical"
    assert low.scalars == ref.scalars


@given(st.integers(0, 10_000), st.sampled_from(SHAPES))
@settings(max_examples=30, deadline=None)
def test_source_backend_bit_exact_on_random_programs(seed, shape):
    p = random_program(seed, shape=shape)
    assert_source_exact(p, params_for(p))


@given(st.integers(0, 10_000), st.sampled_from(SHAPES))
@settings(max_examples=12, deadline=None)
def test_vectorized_backend_within_tolerance(seed, shape):
    p = random_program(seed, shape=shape)
    params = params_for(p)
    base = ArrayStore(p, dict(params)).snapshot()
    ref, _ = execute(p, params, arrays=base)
    vec = run(p, params, arrays=base, backend="source-vec")
    assert outputs_close(ref.snapshot(), vec.snapshot())
    assert set(vec.scalars) == set(ref.scalars)


@given(st.integers(1, 3))
@settings(max_examples=3, deadline=None)
def test_guard_heavy_wavefront_programs(factor):
    """Skewed-then-interchanged stencils generate min/max bounds, floor
    and ceil divisions and guards — the source backend must stay exact."""
    for make, params in ((gauss_seidel_1d, {"N": 7, "T": 4}),
                         (jacobi_1d, {"N": 8, "T": 3})):
        p = make()
        lay = Layout(p)
        deps = analyze_dependences(p)
        t = compose(skew(lay, "I", "S", factor), permutation(lay, "S", "I"))
        try:
            g = generate_code(p, t.matrix, deps)
        except ReproError:
            continue  # an illegal factor for this kernel is fine
        assert_source_exact(g.program, params)


@given(st.integers(0, 10_000))
@settings(max_examples=8, deadline=None)
def test_identity_generated_random_programs(seed):
    """Codegen'd programs (Guard nodes, rewritten bounds) of random
    nests lower exactly too — the singular/guard emission paths."""
    from repro.linalg import IntMatrix

    p = random_program(seed)
    lay = Layout(p)
    deps = analyze_dependences(p)
    try:
        g = generate_code(p, IntMatrix.identity(lay.dimension), deps)
    except ReproError:
        return
    assert_source_exact(g.program, params_for(p))
