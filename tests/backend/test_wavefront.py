"""The source-par backend's correctness gauntlet: wavefront dispatch
must be *bit-exact* against the reference interpreter on every front
shape (wide anti-diagonal slices, shrinking triangular fronts, tiled
chunk-mode bodies) and at every worker count — parallelism is an
execution detail, never an answer change.  docs/PARALLEL.md carries the
determinism argument these tests pin down.

``REPRO_PAR_MIN_FRONT=1`` forces pool dispatch even for the tiny fronts
of test-sized programs; without it the width cutoff would quietly run
everything serially and the jobs sweep would test nothing.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.backend import lower_program, run
from repro.codegen import generate_code
from repro.codegen.simplify import simplify_program
from repro.dependence import analyze_dependences
from repro.interp import ArrayStore, execute
from repro.interp.equivalence import outputs_close
from repro.kernels import gauss_seidel_1d, jacobi_1d, random_program, seidel_2d, trmm
from repro.kernels.generator import SHAPES
from repro.transform.spec import parse_schedule

JOBS_SWEEP = (1, 2, 8)


def _scheduled(program, spec):
    """Apply a transformation spec and return the rewritten program."""
    sched = parse_schedule(program, spec)
    generated = generate_code(sched.program, sched.matrix, sched.deps)
    return simplify_program(generated.program)


def _assert_par_exact(p, params, jobs, monkeypatch):
    monkeypatch.setenv("REPRO_PAR_MIN_FRONT", "1")
    base = ArrayStore(p, dict(params)).snapshot()
    ref, _ = execute(p, params, arrays=base)
    par = run(p, params, arrays=base, backend="source-par", par_jobs=jobs)
    for k, a in ref.arrays.items():
        assert np.array_equal(par.arrays[k], a), (
            f"array {k} not bit-identical at par_jobs={jobs}"
        )
    assert par.scalars == ref.scalars


@pytest.mark.parametrize("jobs", JOBS_SWEEP)
class TestBitExactAcrossWorkerCounts:
    def test_skewed_seidel_2d(self, jobs, monkeypatch):
        # the canonical wavefront: skew turns the diagonal dependence
        # pattern into wide DOALL anti-diagonal fronts (slice mode)
        p = _scheduled(seidel_2d(), "skew(I, J, 1)")
        _assert_par_exact(p, {"N": 13}, jobs, monkeypatch)

    def test_skewed_gauss_seidel_1d(self, jobs, monkeypatch):
        # a single skew is not enough here (the inner distance-(0,1)
        # dependence survives); skew-then-permute exposes the band
        p = _scheduled(gauss_seidel_1d(), "skew(I, S, 2); permute(S, I)")
        _assert_par_exact(p, {"N": 9, "T": 5}, jobs, monkeypatch)

    def test_jacobi_1d_unskewed(self, jobs, monkeypatch):
        # already-DOALL inner loops need no skew at all: each time step
        # is one front
        _assert_par_exact(jacobi_1d(), {"N": 24, "T": 6}, jobs, monkeypatch)

    def test_tiled_trmm(self, jobs, monkeypatch):
        # tiling introduces non-unit strides and guard-heavy bounds;
        # fronts fall back to chunk mode and must still agree
        p = _scheduled(trmm(), "tile(I, 8)")
        _assert_par_exact(p, {"N": 21}, jobs, monkeypatch)


@given(st.integers(0, 10_000), st.sampled_from(SHAPES))
@settings(max_examples=30, deadline=None)
def test_source_par_matches_reference_on_random_programs(seed, shape):
    """Whatever nest the generator produces — wavefront band or not —
    source-par must agree with the tree walker (the cross-backend fuzz
    oracle's claim, pinned as a property)."""
    p = random_program(seed, shape=shape)
    params = {name: 5 for name in p.params}
    base = ArrayStore(p, dict(params)).snapshot()
    ref, _ = execute(p, params, arrays=base)
    par = run(p, params, arrays=base, backend="source-par", par_jobs=4)
    assert outputs_close(ref.snapshot(), par.snapshot())
    assert set(par.scalars) == set(ref.scalars)


class TestNoWavefrontFallback:
    def test_unskewed_seidel_degrades_to_serial(self):
        """No DOALL band without the skew: lowering reports zero
        wavefront loops, emits a program-level reject event, and the
        serial emission still runs correctly."""
        p = gauss_seidel_1d()
        deps = analyze_dependences(p)
        with obs.session() as sess:
            lowered = lower_program(p, vectorize=True, parallel=True, deps=deps)
            events = [ev for ev in sess.events if ev.kind == "wavefront"]
        assert lowered.parallel and lowered.wavefront_loops == 0
        assert any(ev.verdict == "reject" for ev in events)
        params = {"N": 9, "T": 4}
        base = ArrayStore(p, dict(params)).snapshot()
        ref, _ = execute(p, params, arrays=base)
        par = run(p, params, arrays=base, backend="source-par")
        for k, a in ref.arrays.items():
            assert np.array_equal(par.arrays[k], a)

    def test_skewed_seidel_reports_wavefront_loop(self):
        p = _scheduled(seidel_2d(), "skew(I, J, 1)")
        lowered = lower_program(p, vectorize=True, parallel=True)
        assert lowered.wavefront_loops == 1
