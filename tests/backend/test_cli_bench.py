"""CLI surface of the backend subsystem: ``repro bench``, ``--backend``
on run/report/fuzz, bundled-kernel name resolution, and comma-separated
parameter lists."""

import json

import pytest

from repro.cli import _load_flexible, _params, main
from repro.util.errors import ReproError

SRC = """param N
real A(N)
do I = 1..N
  S1: A(I) = sqrt(A(I))
  do J = I+1..N
    S2: A(J) = A(J) / A(I)
  enddo
enddo
"""


@pytest.fixture()
def loopfile(tmp_path):
    f = tmp_path / "prog.loop"
    f.write_text(SRC)
    return str(f)


class TestLoadFlexible:
    def test_bundled_kernel_by_name(self):
        p = _load_flexible("cholesky")
        assert p.name == "cholesky"

    def test_loop_file(self, loopfile):
        assert _load_flexible(loopfile).params == ("N",)

    def test_extension_inferred(self, loopfile):
        assert _load_flexible(loopfile[: -len(".loop")]).params == ("N",)

    def test_unknown_name_errors(self):
        with pytest.raises(ReproError, match="no such file or bundled kernel"):
            _load_flexible("not_a_kernel_or_file")


class TestParamParsing:
    def test_comma_separated(self):
        assert _params(["N=8,T=3"]) == {"N": 8, "T": 3}

    def test_repeated_and_mixed(self):
        assert _params(["N=8", "T=3,M=2"]) == {"N": 8, "T": 3, "M": 2}


class TestRunBackend:
    def test_run_with_source_backend(self, loopfile, capsys):
        assert main(["run", loopfile, "-p", "N=5", "--backend", "source"]) == 0
        assert "A" in capsys.readouterr().out

    def test_trace_requires_reference(self, loopfile, capsys):
        rc = main(["run", loopfile, "-p", "N=5", "--backend", "source", "--trace"])
        assert rc != 0
        assert "requires --backend reference" in capsys.readouterr().err


class TestBenchCommand:
    def test_bench_bundled_kernel(self, capsys):
        assert main(["bench", "simplified_cholesky", "--params", "N=16",
                     "--repeat", "1"]) == 0
        out = capsys.readouterr().out
        for b in ("reference", "compiled", "source", "source-vec"):
            assert b in out

    def test_bench_json_output(self, tmp_path, capsys):
        dest = str(tmp_path / "bench.json")
        assert main(["bench", "simplified_cholesky", "--params", "N=12",
                     "--backend", "source", "--repeat", "1", "--json", dest]) == 0
        payload = json.loads((tmp_path / "bench.json").read_text())
        rows = {r["backend"]: r for r in payload["rows"]}
        assert rows["source"]["ok"] is True
        assert rows["source"]["seconds"] > 0

    def test_bench_subset_of_backends(self, loopfile, capsys):
        assert main(["bench", loopfile, "--params", "N=10",
                     "--backend", "source", "--repeat", "1"]) == 0
        out = capsys.readouterr().out
        assert "source" in out and "source-vec" not in out


class TestReportBackend:
    def test_report_ranks_by_measured_time(self, loopfile, capsys):
        assert main(["report", loopfile, "-p", "N=10",
                     "--backend", "source"]) == 0
        out = capsys.readouterr().out
        assert "ms" in out  # measured-seconds column present

    def test_report_metrics_include_backend_counters(self, loopfile, capsys):
        # report's observability section picks up the backend.* counters
        # emitted by the measured-time ranking
        assert main(["report", loopfile, "-p", "N=10",
                     "--backend", "source"]) == 0
        out = capsys.readouterr().out
        assert "backend.runs.source" in out
        assert "backend.lowerings" in out


class TestFuzzBackend:
    def test_fuzz_with_backend_oracle(self, tmp_path, capsys):
        assert main(["fuzz", "--runs", "4", "--seed", "7",
                     "--corpus", str(tmp_path / "corpus"),
                     "--backend", "source", "--backend", "source-vec"]) == 0
        assert "fuzz: 4 runs" in capsys.readouterr().out
