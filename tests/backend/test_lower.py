"""Lowering backend: emitted source is bit-identical to the reference
interpreter on scalar paths, including guards, floor/ceil bounds and
singular-loop conditionals."""

import numpy as np
import pytest

from repro.backend import lower_program, run, run_lowered
from repro.codegen import generate_code
from repro.dependence import analyze_dependences
from repro.instance import Layout
from repro.interp import ArrayStore, execute
from repro.ir import parse_program
from repro.kernels import (
    blur_2d, cholesky, gauss_seidel_1d, gemver_like, jacobi_1d,
    lu_factorization, simplified_cholesky, sweep_pair, syrk_like,
)
from repro.linalg import IntMatrix
from repro.transform import compose, permutation, skew
from repro.util.errors import BackendError, InterpError

ALL_KERNELS = [
    (simplified_cholesky, {"N": 9}),
    (cholesky, {"N": 8}),
    (lu_factorization, {"N": 6}),
    (blur_2d, {"N": 7}),
    (gemver_like, {"N": 6}),
    (jacobi_1d, {"N": 8, "T": 4}),
    (gauss_seidel_1d, {"N": 7, "T": 3}),
    (sweep_pair, {"N": 7}),
    (syrk_like, {"N": 6}),
]


def bit_identical(p, params):
    base = ArrayStore(p, dict(params)).snapshot()
    ref, _ = execute(p, params, arrays=base)
    low = run(p, params, arrays=base, backend="source")
    return all(
        np.array_equal(ref.arrays[k], low.arrays[k]) for k in ref.arrays
    ) and ref.scalars == low.scalars


class TestScalarExactness:
    @pytest.mark.parametrize("factory,params", ALL_KERNELS,
                             ids=[f.__name__ for f, _ in ALL_KERNELS])
    def test_kernels_bit_identical(self, factory, params):
        assert bit_identical(factory(), params)

    def test_scalar_statements(self):
        p = parse_program(
            "param N\nreal A(N)\n"
            "do I = 1..N\n"
            "  S1: t = A(I) * 2.0\n"
            "  S2: A(I) = t + 1.0\n"
            "enddo"
        )
        assert bit_identical(p, {"N": 6})

    def test_negative_step_loop(self):
        from repro.ir.ast import ArrayDecl, Loop, Program, Statement
        from repro.ir.expr import ArrayRef, VarRef
        from repro.polyhedra.affine import var

        # do I = N, 1, -1 : A(I) = A(I) * 2 + I  (order-dependent via I)
        body = Loop.make(
            "I", var("N"), 1,
            [Statement("S1", ArrayRef("A", [VarRef("I")]),
                       ArrayRef("A", [VarRef("I")]) * 2 + VarRef("I"))],
            step=-1,
        )
        p = Program((body,), params=("N",), arrays=(ArrayDecl.make("A", var("N")),))
        assert bit_identical(p, {"N": 5})


class TestGeneratedPrograms:
    def test_wavefront_guards_and_divided_bounds(self):
        p = gauss_seidel_1d()
        lay = Layout(p)
        deps = analyze_dependences(p)
        t = compose(skew(lay, "I", "S", 2), permutation(lay, "S", "I"))
        g = generate_code(p, t.matrix, deps)
        assert bit_identical(g.program, {"N": 10, "T": 6})

    def test_identity_generation_with_distribution(self):
        p = cholesky()
        lay = Layout(p)
        deps = analyze_dependences(p)
        g = generate_code(p, IntMatrix.identity(lay.dimension), deps)
        assert bit_identical(g.program, {"N": 10})

    def test_singular_loop_scaling_guards(self):
        # scale introduces lattice (divisibility) conditions in guards
        p = simplified_cholesky()
        lay = Layout(p)
        deps = analyze_dependences(p)
        from repro.transform import scaling

        t = scaling(lay, "J", 2)
        g = generate_code(p, t.matrix, deps, require_legal=False)
        assert bit_identical(g.program, {"N": 8})


class TestLoweredSource:
    def test_source_is_readable_python(self):
        low = lower_program(cholesky())
        assert "def _kernel(_arrays, _params, _scalars):" in low.source
        assert "for K in range(1, N + 1):" in low.source
        compile(low.source, "<test>", "exec")  # round-trips

    def test_run_lowered_reuses_compiled_fn(self):
        p = simplified_cholesky()
        low = lower_program(p)
        a = run_lowered(low, {"N": 6})
        b = run_lowered(low, {"N": 9})
        assert a.arrays["A"].shape != b.arrays["A"].shape

    def test_reserved_identifier_rejected(self):
        p = parse_program(
            "param N\nreal A(N)\ndo range = 1..N\n  S1: A(range) = 1.0\nenddo"
        )
        with pytest.raises(BackendError, match="reserved"):
            lower_program(p)


class TestRuntimeErrors:
    def test_division_by_zero_matches_reference(self):
        p = parse_program(
            "param N\nreal A(N)\ndo I = 1..N\n  S1: A(I) = A(I) / 0.0\nenddo"
        )
        with pytest.raises(InterpError, match="division by zero"):
            run(p, {"N": 3}, backend="source")
        with pytest.raises(InterpError, match="division by zero"):
            execute(p, {"N": 3})

    def test_unbound_scalar_matches_reference(self):
        p = parse_program(
            "param N\nreal A(N)\ndo I = 1..N\n  S1: A(I) = nope * 2.0\nenddo"
        )
        with pytest.raises(InterpError, match="unbound variable"):
            run(p, {"N": 3}, backend="source")
        with pytest.raises(InterpError, match="unbound variable"):
            execute(p, {"N": 3})
