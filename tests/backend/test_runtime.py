"""The backend registry: ``run()`` dispatch, the lowering cache, and the
``bench_backends`` comparison harness."""

import math

import numpy as np
import pytest

from repro.backend import (
    BACKENDS, bench_backends, lower_cached, run,
)
from repro.interp import ArrayStore, execute
from repro.ir import parse_program
from repro.kernels import cholesky, simplified_cholesky
from repro.obs import session, snapshot
from repro.util.errors import BackendError, InterpError


class TestRunDispatch:
    def test_all_backends_agree_on_cholesky(self):
        p = cholesky()
        params = {"N": 9}
        base = ArrayStore(p, dict(params)).snapshot()
        ref, _ = execute(p, params, arrays=base)
        for b in BACKENDS:
            store = run(p, params, arrays=base, backend=b)
            np.testing.assert_allclose(
                store.arrays["A"], ref.arrays["A"], rtol=1e-9, atol=1e-12
            )

    def test_unknown_backend_rejected(self):
        with pytest.raises(BackendError, match="unknown backend"):
            run(cholesky(), {"N": 4}, backend="llvm")

    def test_reference_backend_is_the_interpreter(self):
        p = simplified_cholesky()
        ref, _ = execute(p, {"N": 6})
        store = run(p, {"N": 6}, backend="reference")
        assert np.array_equal(store.arrays["A"], ref.arrays["A"])

    def test_array_shape_mismatch_rejected(self):
        p = simplified_cholesky()
        bad = {"A": np.zeros((3, 3))}
        with pytest.raises(InterpError, match="shape"):
            run(p, {"N": 6}, arrays=bad, backend="source")

    def test_initial_arrays_not_mutated(self):
        p = simplified_cholesky()
        base = ArrayStore(p, {"N": 6}).snapshot()
        before = {k: v.copy() for k, v in base.items()}
        run(p, {"N": 6}, arrays=base, backend="source-vec")
        for k in base:
            assert np.array_equal(base[k], before[k])


class TestLowerCache:
    def test_same_program_object_hits_cache(self):
        p = cholesky()
        with session():
            first = lower_cached(p)
            second = lower_cached(p)
            counters, _ = snapshot()
        assert first is second
        assert counters.get("backend.lower_cache_hits", 0) >= 1

    def test_vectorize_flag_is_part_of_the_key(self):
        p = cholesky()
        scalar = lower_cached(p, vectorize=False)
        vec = lower_cached(p, vectorize=True)
        assert scalar is not vec
        assert scalar.vectorized_loops == 0 and vec.vectorized_loops > 0


class TestBenchBackends:
    def test_rows_cover_requested_backends(self):
        rows = bench_backends(
            simplified_cholesky(), {"N": 12},
            backends=("source", "source-vec"), repeat=1,
        )
        assert [r.backend for r in rows] == ["reference", "source", "source-vec"]
        ref = rows[0]
        assert ref.speedup is None and ref.ok is True and ref.seconds > 0
        for r in rows[1:]:
            assert r.ok is True and r.speedup > 0 and not r.error

    def test_unknown_backend_name_rejected(self):
        with pytest.raises(BackendError, match="unknown backend"):
            bench_backends(simplified_cholesky(), {"N": 6}, backends=("jit",))

    def test_backend_error_becomes_row_not_crash(self):
        # `range` as a loop variable: the source backends refuse it but
        # the reference interpreter is happy — bench must report the
        # refusal as an error row, not raise
        p = parse_program(
            "param N\nreal A(N)\ndo range = 1..N\n  S1: A(range) = 1.0\nenddo"
        )
        rows = bench_backends(p, {"N": 5}, backends=("source",), repeat=1)
        by = {r.backend: r for r in rows}
        assert by["reference"].error == ""
        assert "reserved" in by["source"].error
        assert math.isnan(by["source"].seconds)
