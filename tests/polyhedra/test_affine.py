"""Unit tests for affine expressions."""

import pytest

from repro.polyhedra import LinExpr, const, var
from repro.polyhedra.affine import linear_combination
from repro.util.errors import PolyhedronError


class TestConstruction:
    def test_var_and_const(self):
        assert var("x")["x"] == 1
        assert const(5).constant == 5
        assert const(5).is_constant()

    def test_zero_coeffs_dropped(self):
        e = LinExpr({"x": 0, "y": 2})
        assert e.variables() == {"y"}

    def test_non_integer_rejected(self):
        with pytest.raises(PolyhedronError):
            LinExpr({"x": 1.5})


class TestArithmetic:
    def test_add(self):
        e = var("x") + var("y") + 3
        assert e["x"] == 1 and e["y"] == 1 and e.constant == 3

    def test_sub_cancels(self):
        e = var("x") - var("x")
        assert e.is_constant() and e.constant == 0

    def test_scalar_mul(self):
        e = 3 * (var("x") + 1)
        assert e["x"] == 3 and e.constant == 3

    def test_radd_int(self):
        e = 2 + var("x")
        assert e.constant == 2

    def test_rsub_int(self):
        e = 10 - var("x")
        assert e["x"] == -1 and e.constant == 10

    def test_neg(self):
        e = -(var("x") - 4)
        assert e["x"] == -1 and e.constant == 4

    def test_non_int_scale_rejected(self):
        with pytest.raises(PolyhedronError):
            var("x") * 1.5  # type: ignore[operator]


class TestEvaluation:
    def test_eval(self):
        e = 2 * var("i") - var("j") + 3
        assert e.eval({"i": 5, "j": 1}) == 12

    def test_eval_unbound(self):
        with pytest.raises(PolyhedronError):
            var("x").eval({})

    def test_eval_partial(self):
        e = var("i") + var("j")
        p = e.eval_partial({"i": 4})
        assert p["j"] == 1 and p.constant == 4 and "i" not in p.variables()


class TestSubstitution:
    def test_substitute(self):
        e = 2 * var("x") + var("y")
        s = e.substitute("x", var("a") + 1)
        assert s["a"] == 2 and s["y"] == 1 and s.constant == 2

    def test_substitute_absent_var(self):
        e = var("y")
        assert e.substitute("x", const(99)) == e

    def test_rename(self):
        e = var("x") + 2 * var("y")
        r = e.rename({"x": "u", "y": "v"})
        assert r["u"] == 1 and r["v"] == 2

    def test_rename_merge(self):
        e = var("x") + var("y")
        r = e.rename({"x": "z", "y": "z"})
        assert r["z"] == 2


class TestMisc:
    def test_content(self):
        assert (2 * var("x") + 4 * var("y")).content() == 2
        assert const(7).content() == 0

    def test_equality_and_hash(self):
        assert var("x") + 1 == 1 + var("x")
        assert hash(var("x")) == hash(LinExpr({"x": 1}))
        assert var("x") != var("y")

    def test_eq_int(self):
        assert const(3) == 3
        assert const(3) != 4

    def test_str_rendering(self):
        assert str(var("x") - var("y") + 1) == "x - y + 1"
        assert str(const(0)) == "0"
        assert str(-2 * var("x")) == "-2*x"

    def test_linear_combination(self):
        e = linear_combination([(2, "a"), (3, "a"), (-1, "b")], 4)
        assert e["a"] == 5 and e["b"] == -1 and e.constant == 4
