"""Dedicated constraint-layer tests."""

import pytest

from repro.polyhedra import Constraint, LinExpr, eq, eq0, ge, ge0, gt, le, lt, var
from repro.util.errors import PolyhedronError

x, y = var("x"), var("y")


class TestKinds:
    def test_unknown_kind_rejected(self):
        with pytest.raises(PolyhedronError):
            Constraint(x, "<=")

    def test_is_equality(self):
        assert eq(x, y).is_equality()
        assert not ge(x, y).is_equality()

    def test_variables(self):
        assert ge(x + y, 1).variables() == {"x", "y"}


class TestComparatorSugar:
    def test_lt_strict_integer(self):
        c = lt(x, 3)  # x <= 2
        assert c.satisfied_by({"x": 2})
        assert not c.satisfied_by({"x": 3})

    def test_gt_strict_integer(self):
        c = gt(x, 3)
        assert c.satisfied_by({"x": 4})
        assert not c.satisfied_by({"x": 3})

    def test_le_ge_boundary(self):
        assert le(x, 3).satisfied_by({"x": 3})
        assert ge(x, 3).satisfied_by({"x": 3})

    def test_int_literals_both_sides(self):
        assert ge(5, 3).is_trivially_true()
        assert le(5, 3).is_trivially_false()

    def test_bad_operand(self):
        with pytest.raises(PolyhedronError):
            le("x", 3)  # type: ignore[arg-type]


class TestNormalization:
    def test_content_division_with_floor(self):
        # 3x >= 2  ->  x >= 1 over the integers
        c = ge0(3 * x - 2)
        assert c.expr == x - 1

    def test_negative_constant_floor(self):
        # 2x >= -3 -> x >= -1 (floor of -3/2 is -2: -(-3)//2... check)
        c = ge0(2 * x + 3)
        # 2x + 3 >= 0 -> x >= -3/2 -> x >= -1; normalized: x + 1 >= 0
        assert c.satisfied_by({"x": -1})
        assert not c.satisfied_by({"x": -2})

    def test_equality_gcd(self):
        c = eq0(2 * x - 4 * y)
        assert c.expr == x - 2 * y

    def test_equality_unsolvable_collapses(self):
        assert eq0(3 * x - 2).is_trivially_false()

    def test_rename_and_substitute(self):
        c = ge(x, y)
        r = c.rename({"x": "a"})
        assert r.satisfied_by({"a": 5, "y": 3})
        s = c.substitute("y", LinExpr({}, 7))
        assert s.satisfied_by({"x": 7})
        assert not s.satisfied_by({"x": 6})

    def test_hashable_and_str(self):
        assert len({ge(x, 1), ge(x, 1)}) == 1
        assert ">=" in str(ge(x, 1))

    def test_negated_pair_only_for_equalities(self):
        with pytest.raises(PolyhedronError):
            ge(x, 1).negated_pair()
