"""System transformation operations: rename, partial eval, conjoin."""

import pytest

from repro.polyhedra import Feasibility, System, eq, ge, le, var
from repro.util.errors import PolyhedronError

x, y, N = var("x"), var("y"), var("N")


class TestRename:
    def test_rename_preserves_semantics(self):
        s = System([ge(x, 1), le(x, N)])
        r = s.rename({"x": "z"})
        assert r.satisfied_by({"z": 3, "N": 5})
        assert not r.satisfied_by({"z": 0, "N": 5})

    def test_rename_infeasible_stays(self):
        s = System([ge(1, 2)])
        assert s.rename({"x": "z"}).is_trivially_false()


class TestEvalPartial:
    def test_pins_variable(self):
        s = System([ge(x, y), le(x, N)])
        p = s.eval_partial({"y": 4})
        assert p.satisfied_by({"x": 4, "N": 9})
        assert not p.satisfied_by({"x": 3, "N": 9})

    def test_can_expose_contradiction(self):
        s = System([ge(x, y), le(x, y - 1)])
        pinned = s.eval_partial({"y": 0})
        # x >= 0 and x <= -1: not syntactically false, but infeasible
        assert pinned.feasible() is Feasibility.INFEASIBLE


class TestConjoin:
    def test_false_absorbs(self):
        f = System([ge(1, 2)])
        t = System([ge(x, 0)])
        assert t.conjoin(f).is_trivially_false()
        assert f.conjoin(t).is_trivially_false()

    def test_and_on_false_is_noop(self):
        f = System([ge(1, 2)])
        assert f.and_(ge(x, 0)).is_trivially_false()


class TestVarRange:
    def test_equality_pin(self):
        s = System([eq(x, 7)])
        assert s.var_range("x") == (7, 7)

    def test_range_through_other_vars(self):
        s = System([ge(x, y), ge(y, 3), le(x, 10)])
        lo, hi = s.var_range("x")
        assert (lo, hi) == (3, 10)

    def test_infeasible_raises(self):
        s = System([ge(x, y + 1), le(x, y - 1)])
        with pytest.raises(PolyhedronError):
            s.var_range("x")


class TestFeasibilityCorners:
    def test_single_point(self):
        s = System([eq(x, 2), eq(y, 2), eq(x, y)])
        assert s.feasible() is Feasibility.FEASIBLE

    def test_contradictory_equalities(self):
        s = System([eq(x, 2), eq(x, 3)])
        assert s.feasible() is Feasibility.INFEASIBLE

    def test_unbounded_feasible(self):
        s = System([ge(x, 0)])
        assert s.feasible() is Feasibility.FEASIBLE

    def test_repr_readable(self):
        assert "x" in repr(System([ge(x, 0)]))
        assert "infeasible" in repr(System([ge(1, 2)]))
