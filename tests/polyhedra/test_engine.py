"""The memoizing polyhedral query engine: LRU mechanics, canonical
keys, observability counters, and cached/fused-vs-oracle agreement on a
randomized corpus."""

import random

import pytest

from repro import obs
from repro.polyhedra import Feasibility, LinExpr, System, engine, eq, ge, ge0, le, var
from repro.polyhedra.engine import MISS, EngineStats, QueryEngine


@pytest.fixture(autouse=True)
def _clean_engine():
    """Each test starts from an empty, enabled default engine."""
    engine.configure(enabled=True)
    engine.cache_clear()
    yield
    engine.configure(enabled=True)
    engine.cache_clear()


# -- LRU mechanics ----------------------------------------------------------


class TestQueryEngine:
    def test_get_miss_then_hit(self):
        eng = QueryEngine(maxsize=4)
        assert eng.get("k") is MISS
        eng.put("k", 42)
        assert eng.get("k") == 42
        s = eng.stats()
        assert (s.hits, s.misses) == (1, 1)

    def test_eviction_is_lru(self):
        eng = QueryEngine(maxsize=2)
        eng.put("a", 1)
        eng.put("b", 2)
        assert eng.get("a") == 1  # refresh a; b is now LRU
        eng.put("c", 3)
        assert eng.get("b") is MISS
        assert eng.get("a") == 1
        assert eng.get("c") == 3
        assert eng.stats().evictions == 1

    def test_clear_keeps_stats(self):
        eng = QueryEngine(maxsize=4)
        eng.put("a", 1)
        eng.get("a")
        eng.clear()
        assert eng.get("a") is MISS
        s = eng.stats()
        assert s.size == 0 and s.hits == 1

    def test_stats_hit_rate(self):
        assert EngineStats(3, 1, 0, 0, 8, True).hit_rate == 0.75
        assert EngineStats(0, 0, 0, 0, 8, True).hit_rate == 0.0


class TestDefaultEngineConfig:
    def test_configure_disable_enable(self):
        engine.configure(enabled=False)
        assert engine.active() is None
        engine.configure(enabled=True)
        assert engine.active() is engine.default_engine()

    def test_cache_disabled_context_restores(self):
        with engine.cache_disabled():
            assert engine.active() is None
        assert engine.active() is not None

    def test_resize_clears(self):
        s = System([ge(var("x"), 0), le(var("x"), 5)])
        s.feasible()
        assert len(engine.default_engine()) > 0
        engine.configure(maxsize=1024)
        assert len(engine.default_engine()) == 0


# -- caching behavior on Systems -------------------------------------------


class TestSystemMemoization:
    def test_feasible_is_cached(self):
        s = System([ge(var("x"), 0), le(var("x"), 5)])
        before = engine.cache_stats()
        assert s.feasible() is Feasibility.FEASIBLE
        mid = engine.cache_stats()
        assert s.feasible() is Feasibility.FEASIBLE
        after = engine.cache_stats()
        assert mid.misses > before.misses
        assert after.hits > mid.hits

    def test_structurally_equal_systems_share_entries(self):
        a = System([ge(var("x"), 0), le(var("x"), var("N"))])
        b = System([le(var("x"), var("N")), ge(var("x"), 0)])  # reordered
        assert a.canonical_key() == b.canonical_key()
        assert a == b and hash(a) == hash(b)
        a.feasible()
        h0 = engine.cache_stats().hits
        b.feasible()
        assert engine.cache_stats().hits > h0

    def test_eliminate_shadows_exact_shares_object(self):
        s = System([ge(var("x"), 0), le(var("x"), var("N"))])
        real, dark, exact = s.eliminate_shadows("x")
        assert exact and real is dark

    def test_eliminate_shadows_inexact_diverges(self):
        # 2x >= y and 3x <= z: the x-pairing has non-unit coefficients on
        # both sides, so the dark shadow is strictly tighter than real.
        s = System([ge0(LinExpr({"x": 2, "y": -1})), ge0(LinExpr({"x": -3, "z": 1}))])
        real, dark, exact = s.eliminate_shadows("x")
        assert not exact and real is not dark
        assert real.satisfied_by({"y": 0, "z": 0})       # -3y + 2z >= 0
        assert not dark.satisfied_by({"y": 0, "z": 0})   # -3y + 2z - 2 >= 0

    def test_cache_counters_reach_obs(self):
        s = System([ge(var("x"), 1), le(var("x"), 9)])
        with obs.session() as sess:
            s.feasible()
            s.feasible()
        assert sess.counters.get("fm.cache_misses", 0) > 0
        assert sess.counters.get("fm.cache_hits", 0) > 0

    def test_variables_cached_identical_object(self):
        """Mutation-free reuse returns the *identical* frozenset."""
        s = System([ge(var("i"), 0), le(var("j"), var("N"))])
        v1 = s.variables()
        v2 = s.variables()
        assert v1 is v2
        assert v1 == frozenset({"i", "j", "N"})

    def test_project_result_usable_after_hits(self):
        s = System([ge(var("i"), 0), le(var("i"), var("j")), le(var("j"), 7)])
        p1, e1 = s.project_onto(("j",))
        p2, e2 = s.project_onto(("j",))
        assert e1 == e2
        assert p1.canonical_key() == p2.canonical_key()
        assert p1.satisfied_by({"j": 3})


# -- randomized corpus: cached/fused == uncached oracle ---------------------


def _random_system(rng: random.Random) -> System:
    names = ["x", "y", "z"]
    cs = []
    for v in names:
        cs.append(ge0(LinExpr({v: 1}, rng.randint(0, 6))))   # v >= -c
        cs.append(ge0(LinExpr({v: -1}, rng.randint(0, 6))))  # v <= c
    for _ in range(rng.randint(0, 4)):
        coeffs = {v: rng.randint(-3, 3) for v in names}
        expr = LinExpr(coeffs, rng.randint(-7, 7))
        cs.append(eq(expr, 0) if rng.random() < 0.25 else ge0(expr))
    return System(cs)


def test_corpus_cached_matches_uncached_oracle():
    rng = random.Random(20260806)
    for i in range(60):
        s = _random_system(rng)
        keep = rng.choice([(), ("x",), ("x", "y")])
        with engine.cache_disabled():
            oracle_feas = s.feasible()
            oracle_proj, oracle_exact = s.project_onto(keep)
        engine.cache_clear()
        # cold (fills cache) then warm (served from cache)
        for attempt in ("cold", "warm"):
            feas = s.feasible()
            proj, exact = s.project_onto(keep)
            assert feas is oracle_feas, f"case {i} ({attempt}): {s}"
            assert exact == oracle_exact, f"case {i} ({attempt}): {s}"
            assert proj.canonical_key() == oracle_proj.canonical_key(), (
                f"case {i} ({attempt}): {s}"
            )


def test_corpus_feasible_sound_vs_brute_force():
    """The fused real+dark sweep stays sound on bounded random systems."""
    rng = random.Random(7)
    for _ in range(40):
        s = _random_system(rng)
        pts = [
            {"x": x, "y": y, "z": z}
            for x in range(-6, 7)
            for y in range(-6, 7)
            for z in range(-6, 7)
            if s.satisfied_by({"x": x, "y": y, "z": z})
        ]
        verdict = s.feasible()
        if pts:
            assert verdict is not Feasibility.INFEASIBLE
        else:
            assert verdict is not Feasibility.FEASIBLE
