"""Property tests: Fourier–Motzkin projection against brute-force
enumeration on random bounded systems."""

from hypothesis import given, settings, strategies as st

from repro.polyhedra import LinExpr, System, ge0
from repro.polyhedra.system import Feasibility

VARS = ["x", "y", "z"]


@st.composite
def bounded_systems(draw):
    """Random systems over x,y,z guaranteed bounded in [-5, 5]^3."""
    cs = []
    for v in VARS:
        cs.append(ge0(LinExpr({v: 1}, 5)))    # v >= -5
        cs.append(ge0(LinExpr({v: -1}, 5)))   # v <= 5
    n_extra = draw(st.integers(0, 4))
    for _ in range(n_extra):
        coeffs = {v: draw(st.integers(-2, 2)) for v in VARS}
        c0 = draw(st.integers(-6, 6))
        cs.append(ge0(LinExpr(coeffs, c0)))
    return System(cs)


def brute_points(s: System):
    pts = []
    for x in range(-5, 6):
        for y in range(-5, 6):
            for z in range(-5, 6):
                if s.satisfied_by({"x": x, "y": y, "z": z}):
                    pts.append((x, y, z))
    return pts


@given(bounded_systems())
@settings(max_examples=40, deadline=None)
def test_feasibility_sound(s):
    pts = brute_points(s)
    verdict = s.feasible()
    if pts:
        assert verdict is not Feasibility.INFEASIBLE
    if verdict is Feasibility.FEASIBLE and not pts:
        # FEASIBLE must be backed by an integer point somewhere; since the
        # box bounds are part of the system, "somewhere" is inside the box.
        raise AssertionError("claimed feasible but box has no integer point")


@given(bounded_systems())
@settings(max_examples=30, deadline=None)
def test_projection_overapproximates(s):
    pts = brute_points(s)
    proj, exact = s.project_onto(["x"])
    xs = {p[0] for p in pts}
    for v in xs:
        assert proj.satisfied_by({"x": v}), "projection must contain every real shadow point"
    if exact:
        # exact projection: every claimed x must extend to a full point
        for x in range(-5, 6):
            if proj.satisfied_by({"x": x}):
                assert x in xs


@given(bounded_systems())
@settings(max_examples=30, deadline=None)
def test_find_point_valid(s):
    p = s.find_point(clip=6)
    pts = brute_points(s)
    if p is not None:
        assert s.satisfied_by(p)
    else:
        assert not pts


@given(bounded_systems())
@settings(max_examples=25, deadline=None)
def test_enumeration_matches_brute_force(s):
    if s.is_trivially_false():
        return
    got = sorted((p["x"], p["y"], p["z"]) for p in s.enumerate_points(VARS))
    assert got == brute_points(s)
