"""Unit tests for loop-bound extraction."""

import pytest

from repro.polyhedra import Bound, System, eq, extract_bounds, ge, ge0, le, var
from repro.util.errors import PolyhedronError

I, J, N = var("I"), var("J"), var("N")


class TestBound:
    def test_div1_eval(self):
        b = Bound(I + 1, 1, True)
        assert b.eval({"I": 4}) == 5

    def test_ceil_floor(self):
        lo = Bound(var("e"), 2, True)   # ceil(e/2)
        hi = Bound(var("e"), 2, False)  # floor(e/2)
        assert lo.eval({"e": 5}) == 3
        assert hi.eval({"e": 5}) == 2
        assert lo.eval({"e": -5}) == -2
        assert hi.eval({"e": -5}) == -3

    def test_positive_divisor_required(self):
        with pytest.raises(PolyhedronError):
            Bound(I, 0, True)

    def test_str(self):
        assert str(Bound(I, 1, True)) == "I"
        assert "ceild" in str(Bound(I, 2, True))
        assert "floord" in str(Bound(I, 2, False))


class TestExtractBounds:
    def test_rectangle(self):
        s = System([ge(I, 1), le(I, N), ge(J, 1), le(J, N)])
        b = extract_bounds(s, ["I", "J"], ["N"])
        assert b[0].lower_value({"N": 5}) == 1
        assert b[0].upper_value({"N": 5}) == 5
        assert b[1].lower_value({"N": 5, "I": 3}) == 1

    def test_triangle_inner_depends_on_outer(self):
        s = System([ge(I, 1), le(I, N), ge(J, I + 1), le(J, N)])
        b = extract_bounds(s, ["I", "J"], ["N"])
        assert b[1].lower_value({"N": 9, "I": 4}) == 5

    def test_order_matters(self):
        s = System([ge(I, 1), le(I, N), ge(J, I + 1), le(J, N)])
        b = extract_bounds(s, ["J", "I"], ["N"])
        # scanning J first: J from 2..N, then I from 1..J-1
        assert b[0].lower_value({"N": 9}) == 2
        assert b[1].upper_value({"N": 9, "J": 5}) == 4

    def test_equality_gives_pinned_loop(self):
        s = System([eq(I, 3), ge(J, I), le(J, N)])
        b = extract_bounds(s, ["I", "J"], ["N"])
        assert b[0].lower_value({"N": 5}) == 3
        assert b[0].upper_value({"N": 5}) == 3

    def test_divided_bounds(self):
        # 2J >= I: J >= ceil(I/2)
        s = System([ge(I, 1), le(I, N), ge0(2 * J - I), le(J, N)])
        b = extract_bounds(s, ["I", "J"], ["N"])
        assert b[1].lower_value({"N": 9, "I": 5}) == 3

    def test_zero_trip_range_allowed(self):
        # contradictory bounds on the scanned var itself stay as a
        # lo > hi zero-trip loop (no elimination happens)
        s = System([ge(I, 2), le(I, 1)])
        b = extract_bounds(s, ["I"])
        assert b[0].lower_value({}) > b[0].upper_value({})

    def test_empty_after_elimination_raises(self):
        # eliminating J exposes the contradiction I+1 <= J <= I-1
        s = System([ge(J, I + 1), le(J, I - 1)])
        with pytest.raises(PolyhedronError):
            extract_bounds(s, ["I", "J"])

    def test_enumeration_matches_bounds(self):
        s = System([ge(I, 1), le(I, 4), ge(J, I), le(J, 4)])
        b = extract_bounds(s, ["I", "J"])
        count = 0
        for i in range(b[0].lower_value({}), b[0].upper_value({}) + 1):
            env = {"I": i}
            for j in range(b[1].lower_value(env), b[1].upper_value(env) + 1):
                count += 1
                assert s.satisfied_by({"I": i, "J": j})
        assert count == len(list(s.enumerate_points(["I", "J"])))
