"""Unit tests for constraint systems, Fourier–Motzkin and feasibility."""

import pytest

from repro.polyhedra import Feasibility, System, eq, ge, ge0, le, var
from repro.polyhedra.constraint import eq0, gt, lt
from repro.util.errors import PolyhedronError

x, y, z, N = var("x"), var("y"), var("z"), var("N")


class TestConstraintNormalization:
    def test_gcd_division(self):
        c = ge0(2 * x - 4)
        assert c.expr == x - 2

    def test_integer_tightening_floor(self):
        # 2x - 1 >= 0  =>  x >= 1/2  =>  x >= 1  i.e. x - 1 >= 0
        c = ge0(2 * x - 1)
        assert c.expr == x - 1

    def test_equality_unsatisfiable_mod(self):
        c = eq0(2 * x - 1)
        assert c.is_trivially_false()

    def test_trivial_true_false(self):
        assert ge(1, 0).is_trivially_true()
        assert ge(-1, 0).is_trivially_false()
        assert eq(0, 0).is_trivially_true()

    def test_satisfied_by(self):
        assert le(x, 5).satisfied_by({"x": 5})
        assert not lt(x, 5).satisfied_by({"x": 5})
        assert gt(x, 4).satisfied_by({"x": 5})
        assert eq(x, y).satisfied_by({"x": 2, "y": 2})

    def test_negated_pair(self):
        lo, hi = eq(x, 3).negated_pair()
        assert lo.satisfied_by({"x": 3}) and hi.satisfied_by({"x": 3})
        assert not (lo.satisfied_by({"x": 2}) and hi.satisfied_by({"x": 2}))


class TestSystemBasics:
    def test_dedup_and_trivia(self):
        s = System([ge(x, 1), ge(x, 1), ge(1, 0)])
        assert len(s) == 1

    def test_trivially_false_collapses(self):
        s = System([ge(-1, 0), ge(x, 1)])
        assert s.is_trivially_false()
        assert len(s) == 0

    def test_satisfied_by(self):
        s = System([ge(x, 1), le(x, 3)])
        assert s.satisfied_by({"x": 2})
        assert not s.satisfied_by({"x": 0})

    def test_conjoin(self):
        a = System([ge(x, 1)])
        b = System([le(x, 3)])
        assert len(a.conjoin(b)) == 2

    def test_substitute(self):
        s = System([ge(x, y)]).substitute("y", x - 1)
        assert s.satisfied_by({"x": 5})


class TestElimination:
    def test_exact_equality_substitution(self):
        s = System([eq(x, y + 1), ge(x, 3), le(x, 3)])
        out, exact = s.eliminate("x")
        assert exact
        assert out.satisfied_by({"y": 2})
        assert not out.satisfied_by({"y": 5})

    def test_fm_pairing(self):
        s = System([ge(x, y), le(x, z)])  # y <= x <= z
        out, exact = s.eliminate("x")
        assert exact
        assert out.satisfied_by({"y": 1, "z": 5})
        assert not out.satisfied_by({"y": 5, "z": 1})

    def test_inexact_flagged(self):
        # 2x >= y, 3x <= z: both coefficients > 1
        s = System([ge0(2 * x - y), ge0(z - 3 * x)])
        _, exact = s.eliminate("x")
        assert not exact

    def test_project_onto(self):
        s = System([ge(x, 1), le(x, N), ge(y, x + 1), le(y, N)])
        proj, exact = s.project_onto(["N"])
        assert exact
        assert proj.satisfied_by({"N": 2})
        assert not proj.satisfied_by({"N": 1})


class TestFeasibility:
    def test_feasible_triangle(self):
        s = System([ge(x, 1), le(x, N), ge(y, x + 1), le(y, N), eq(N, 6)])
        assert s.feasible() is Feasibility.FEASIBLE

    def test_infeasible(self):
        s = System([ge(x, N + 1), le(x, N), ge(N, 1)])
        assert s.feasible() is Feasibility.INFEASIBLE

    def test_empty_system_feasible(self):
        assert System().feasible() is Feasibility.FEASIBLE

    def test_feasibility_not_boolable(self):
        with pytest.raises(PolyhedronError):
            bool(System().feasible())

    def test_dark_shadow_confirms(self):
        # 2x == y with 4 <= y <= 4: solution x=2 exists
        s = System([eq0(2 * x - y), ge(y, 4), le(y, 4)])
        assert s.feasible() in (Feasibility.FEASIBLE, Feasibility.UNKNOWN)
        assert s.find_point() == {"x": 2, "y": 4}

    def test_integer_gap_detected_via_find_point(self):
        # 2x == y, y == 3: rationally feasible, integrally not
        s = System([eq0(2 * x - y), eq(y, 3)])
        assert s.find_point() is None


class TestRangesAndEnumeration:
    def test_var_range(self):
        s = System([ge(x, 2), le(x, 7)])
        assert s.var_range("x") == (2, 7)

    def test_var_range_unbounded(self):
        s = System([ge(x, 2)])
        assert s.var_range("x") == (2, None)

    def test_find_point_respects_constraints(self):
        s = System([ge(x, 1), le(x, 4), ge(y, x), le(y, 4)])
        p = s.find_point()
        assert p is not None and s.satisfied_by(p)

    def test_enumerate_triangle_count(self):
        s = System([ge(x, 1), le(x, 4), ge(y, x + 1), le(y, 4)])
        pts = list(s.enumerate_points(["x", "y"]))
        assert len(pts) == 6  # C(4,2)
        assert pts == sorted(pts, key=lambda p: (p["x"], p["y"]))

    def test_enumerate_unbounded_raises(self):
        s = System([ge(x, 1)])
        with pytest.raises(PolyhedronError):
            list(s.enumerate_points(["x"]))

    def test_enumerate_missing_var_raises(self):
        s = System([ge(x, 1), le(x, 2), ge(y, 0), le(y, 1)])
        with pytest.raises(PolyhedronError):
            list(s.enumerate_points(["x"]))

    def test_enumerate_empty(self):
        s = System([ge(x, 2), le(x, 1)])
        assert list(s.enumerate_points(["x"])) == []
