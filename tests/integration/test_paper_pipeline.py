"""End-to-end reproduction of the paper's worked examples (E1-E9)."""

import numpy as np

from repro import (
    IntMatrix, Layout, analyze_dependences, check_equivalence, check_legality,
    complete_transformation, generate_code, peel_iteration, program_to_str,
    simplify_program, skew, symbolic_vector,
)
from repro.interp import ArrayStore, execute, outputs_close
from repro.kernels import CHOLESKY_VARIANTS, cholesky_variant
from repro.polyhedra import System, ge, var

ASSUME = System([ge(var("N"), 1)])


class TestE1InstanceVectors:
    def test_section2_vectors(self, simp_chol_layout):
        assert [str(e) for e in symbolic_vector(simp_chol_layout, "S1")] == ["I", "0", "1", "I"]
        assert [str(e) for e in symbolic_vector(simp_chol_layout, "S2")] == ["I", "1", "0", "J"]


class TestE7SkewPipeline:
    """§5.4 from source text to the paper's simplified final code."""

    def test_full_pipeline(self, aug):
        lay = Layout(aug)
        deps = analyze_dependences(aug)
        # dependence matrix matches the paper exactly
        assert sorted(tuple(d.entry_strs()) for d in deps) == [
            ("1", "-1", "1", "-1"), ("1", "0", "0", "1"),
        ]
        t = skew(lay, "I", "J", -1)
        r = check_legality(lay, t.matrix, deps)
        assert r.legal and len(r.unsatisfied("S1")) == 1

        g = generate_code(aug, t.matrix, deps)
        simp = simplify_program(g.program, ASSUME)
        final = simplify_program(peel_iteration(simp, (0,), "upper"), ASSUME)
        text = program_to_str(final, header=False)
        # the three pieces of the paper's simplified output
        assert "do I = -N + 1, -1" in text
        assert "A(J, J) = f(J, J)" in text
        assert "do I2 = 1, N" in text

        for n in (1, 3, 8):
            init = ArrayStore(aug, {"N": n}).snapshot()
            s0, _ = execute(aug, {"N": n}, arrays=init)
            s1, _ = execute(final, {"N": n}, arrays=init)
            assert outputs_close(s0.snapshot(), s1.snapshot()), n


class TestE9Completion:
    """§6: partial 'scan the L coordinate first' -> left-looking Cholesky."""

    def test_left_looking(self, chol):
        lay = Layout(chol)
        deps = analyze_dependences(chol)
        res = complete_transformation(chol, [[0, 0, 0, 0, 0, 1, 0]], deps, layout=lay)
        g = generate_code(chol, res.matrix, deps)
        # left-looking structure: update statement first in the new body
        assert [s.label for s in g.program.statements()][0] == "S3"
        rep = check_equivalence(chol, g.program, {"N": 8}, env_map=g.env_map())
        assert rep["ok"]

    def test_generated_left_looking_is_numerically_cholesky(self, chol):
        lay = Layout(chol)
        deps = analyze_dependences(chol)
        res = complete_transformation(chol, [[0, 0, 0, 0, 0, 1, 0]], deps, layout=lay)
        g = generate_code(chol, res.matrix, deps)
        base = ArrayStore(chol, {"N": 8}).snapshot()
        store, _ = execute(g.program, {"N": 8}, arrays=base)
        ref = np.linalg.cholesky(base["A"])
        assert np.allclose(np.tril(store.arrays["A"]), ref, rtol=1e-8)


class TestE10SixPermutations:
    """§1 claim: all six permutations compute the same result."""

    def test_all_variants_equal(self):
        base = ArrayStore(cholesky_variant("kji"), {"N": 10}).snapshot()
        results = {}
        for v in CHOLESKY_VARIANTS:
            store, _ = execute(cholesky_variant(v), {"N": 10}, arrays=base)
            results[v] = np.tril(store.arrays["A"])
        ref = results["kji"]
        for v, r in results.items():
            assert np.allclose(r, ref, rtol=1e-9), v

    def test_all_variants_identity_legal(self):
        """Each variant, analyzed in the framework, is a legal program
        (identity transformation passes Definition 6)."""
        for v in CHOLESKY_VARIANTS:
            p = cholesky_variant(v)
            lay = Layout(p)
            deps = analyze_dependences(p)
            r = check_legality(lay, IntMatrix.identity(lay.dimension), deps)
            assert r.legal, v


class TestE11PerformanceShape:
    """§1 claim: the permutations differ in performance (cache model)."""

    def test_variants_differ_in_misses(self):
        from repro.interp import CacheConfig, simulate_cache, trace_addresses

        cfg = CacheConfig(size_bytes=4 * 1024, line_bytes=64, ways=2)
        base = ArrayStore(cholesky_variant("kji"), {"N": 40}).snapshot()
        misses = {}
        for v in CHOLESKY_VARIANTS:
            store, t = execute(cholesky_variant(v), {"N": 40}, arrays=base, trace=True)
            misses[v] = simulate_cache(trace_addresses(t, store), cfg).misses
        # materially different performance across orders
        assert max(misses.values()) > 1.2 * min(misses.values()), misses


class TestE13Distribution:
    def test_distribution_illegal_on_factorizations(self, simp_chol, chol, lu):
        from repro.transform import distribution_legal

        for prog in (simp_chol, chol, lu):
            deps = analyze_dependences(prog)
            assert distribution_legal(deps, (0,), 1) is False, prog.name
