"""Final coverage sweep: unoptimized layouts, simplifier on real
generated code, search/compiled cross-checks."""

import numpy as np
import pytest

from repro.codegen import generate_code
from repro.codegen.simplify import simplify_program
from repro.completion import complete_transformation
from repro.dependence import analyze_dependences
from repro.instance import DynamicInstance, Layout, instance_vector
from repro.interp import ArrayStore, execute, execute_compiled, outputs_close
from repro.ir import program_to_str
from repro.kernels import cholesky, running_example
from repro.polyhedra import System, ge, var


class TestUnoptimizedLayouts:
    """Theorem 1 must hold with single-edge labels kept too."""

    def test_order_isomorphism_unoptimized(self):
        p = running_example()
        lay = Layout(p, optimize_single_edges=False)
        _, trace = execute(p, {"N": 5}, trace=True)
        insts = []
        for rec in trace.records:
            order = [c.var for c in lay.surrounding_loop_coords(rec.label)]
            insts.append(DynamicInstance(rec.label, tuple(rec.env[v] for v in order)))
        vectors = [instance_vector(lay, d) for d in insts]
        assert vectors == sorted(vectors)

    def test_unoptimized_dimension_larger(self, chol):
        opt = Layout(chol)
        raw = Layout(chol, optimize_single_edges=False)
        assert raw.dimension > opt.dimension


class TestSimplifierOnGeneratedCholesky:
    def test_left_looking_simplifies_clean(self, chol):
        deps = analyze_dependences(chol)
        lay = Layout(chol)
        res = complete_transformation(chol, [[0, 0, 0, 0, 0, 1, 0]], deps, layout=lay)
        g = generate_code(chol, res.matrix, deps)
        assume = System([ge(var("N"), 1)])
        simp = simplify_program(g.program, assume)
        text = program_to_str(simp, header=False)
        # pruning removed all guards and collapsed min/max noise
        assert "if (" not in text
        assert "min(2, 1)" not in text
        base = ArrayStore(chol, {"N": 8}).snapshot()
        s0, _ = execute(chol, {"N": 8}, arrays=base)
        s1, _ = execute(simp, {"N": 8}, arrays=base)
        assert outputs_close(s0.snapshot(), s1.snapshot())

    def test_simplified_runs_compiled(self, chol):
        deps = analyze_dependences(chol)
        lay = Layout(chol)
        res = complete_transformation(chol, [[0, 0, 0, 0, 0, 1, 0]], deps, layout=lay)
        g = generate_code(chol, res.matrix, deps)
        simp = simplify_program(g.program, System([ge(var("N"), 1)]))
        base = ArrayStore(chol, {"N": 8}).snapshot()
        fast = execute_compiled(simp, {"N": 8}, arrays=base)
        ref = np.linalg.cholesky(base["A"])
        assert np.allclose(np.tril(fast.arrays["A"]), ref, rtol=1e-8)


class TestTransformationAPI:
    def test_then_dimension_mismatch(self, simp_chol_layout, chol_layout):
        from repro.transform import identity
        from repro.util.errors import TransformError

        with pytest.raises(TransformError):
            identity(simp_chol_layout).then(identity(chol_layout))

    def test_wrong_shape_matrix_rejected(self, simp_chol_layout):
        from repro.linalg import IntMatrix
        from repro.transform import Transformation
        from repro.util.errors import TransformError

        with pytest.raises(TransformError):
            Transformation(simp_chol_layout, IntMatrix.identity(3))

    def test_description_composes(self, simp_chol_layout):
        from repro.transform import compose, reversal, skew

        t = compose(skew(simp_chol_layout, "I", "J", 1), reversal(simp_chol_layout, "J"))
        assert "skew" in t.description and "reverse" in t.description

    def test_repr(self, simp_chol_layout):
        from repro.transform import identity

        assert "identity" in repr(identity(simp_chol_layout))


class TestSearchCrossCheck:
    def test_search_results_rerun_compiled(self):
        from repro.analysis import search_loop_orders

        results = search_loop_orders(cholesky(), {"N": 12})
        assert results
        base = ArrayStore(cholesky(), {"N": 12}).snapshot()
        ref = np.linalg.cholesky(base["A"])
        for r in results:
            fast = execute_compiled(r.program, {"N": 12}, arrays=base)
            assert np.allclose(np.tril(fast.arrays["A"]), ref, rtol=1e-8), r.lead_var
