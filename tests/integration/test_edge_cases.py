"""Edge cases across the pipeline: top-level statements, single
statements, deep nests, empty programs, parameterless programs."""

import pytest

from repro.codegen import generate_code
from repro.dependence import analyze_dependences
from repro.instance import Layout
from repro.interp import check_equivalence, execute
from repro.ir import parse_program
from repro.legality import check_legality
from repro.linalg import IntMatrix


class TestTopLevelStatements:
    SRC = (
        "param N\nreal A(N), B(N)\n"
        "x = 1.0\n"
        "do I = 1..N\n S2: A(I) = x + f(I)\nenddo\n"
        "y = A(1)\n"
    )

    def test_layout(self):
        p = parse_program(self.SRC)
        lay = Layout(p)
        # virtual root has 3 children -> 3 edge coords + 1 loop coord
        assert lay.dimension == 4
        assert lay.surrounding_loop_coords("S1") == []

    def test_dependences(self):
        p = parse_program(self.SRC)
        m = analyze_dependences(p)
        pairs = {(d.src, d.dst) for d in m}
        assert ("S1", "S2") in pairs  # scalar x flows into the loop
        assert ("S2", "S3") in pairs  # A(1) read at the end

    def test_identity_codegen(self):
        p = parse_program(self.SRC)
        lay = Layout(p)
        g = generate_code(p, IntMatrix.identity(lay.dimension))
        rep = check_equivalence(p, g.program, {"N": 5}, env_map=g.env_map())
        assert rep["ok"]

    def test_reorder_of_independent_top_level(self):
        from repro.transform import statement_reorder

        src = (
            "param N\nreal A(N), B(N)\n"
            "do I = 1..N\n S1: A(I) = f(I)\nenddo\n"
            "do J = 1..N\n S2: B(J) = g(J)\nenddo\n"
        )
        p = parse_program(src)
        lay = Layout(p)
        t, _ = statement_reorder(lay, (), [1, 0])
        deps = analyze_dependences(p)
        r = check_legality(lay, t.matrix, deps)
        assert r.legal
        g = generate_code(p, t.matrix, deps)
        assert [s.label for s in g.program.statements()] == ["S2", "S1"]
        rep = check_equivalence(p, g.program, {"N": 5}, env_map=g.env_map())
        assert rep["ok"]


class TestDegenerateShapes:
    def test_single_statement_no_loops(self):
        p = parse_program("param N\nreal A(N)\nA(1) = 1.0")
        lay = Layout(p)
        assert lay.dimension == 0
        m = analyze_dependences(p)
        assert len(m) == 0
        g = generate_code(p, IntMatrix([]))
        store, _ = execute(g.program, {"N": 3})
        assert store.arrays["A"][0] == 1.0

    def test_parameterless_program(self):
        p = parse_program("real A(10)\ndo I = 1..10\n S1: A(I) = f(I)\nenddo")
        store, t = execute(p, {}, trace=True)
        assert len(t) == 10
        m = analyze_dependences(p)
        assert len(m) == 0

    def test_deep_nest(self):
        depth = 6
        lines = ["param N", "real A(N,N)"]
        vars_ = [f"V{i}" for i in range(depth)]
        for v in vars_:
            lines.append(f"do {v} = 1..2")
        lines.append(f"S1: A(1,1) = A(1,1) + f({vars_[-1]})")
        for _ in vars_:
            lines.append("enddo")
        p = parse_program("\n".join(lines))
        lay = Layout(p)
        assert lay.dimension == depth
        m = analyze_dependences(p)
        assert m.self_deps("S1")
        _, t = execute(p, {"N": 2}, trace=True)
        assert len(t) == 2**depth

    def test_wide_imperfect_nest(self):
        body = "\n".join(f"  S{i}: A({i}) = f(I)" for i in range(1, 8))
        p = parse_program(f"param N\nreal A(N)\ndo I = 1..N\n{body}\nenddo")
        lay = Layout(p)
        assert len(lay.edge_coords()) == 7
        g = generate_code(p, IntMatrix.identity(lay.dimension))
        rep = check_equivalence(p, g.program, {"N": 8}, env_map=g.env_map())
        assert rep["ok"]

    def test_symbolic_lower_bound(self):
        p = parse_program(
            "param N, M\nreal A(0:2*N)\ndo I = M..N+M\n S1: A(I-M+1) = f(I)\nenddo"
        )
        _, t = execute(p, {"N": 4, "M": 3}, trace=True)
        assert len(t) == 5
        m = analyze_dependences(p)
        assert len(m) == 0


class TestGuardsAndSteps:
    def test_nonunit_step_execution(self):
        p = parse_program("param N\nreal A(N)\ndo I = 1..N, 3\n S1: A(I) = 1.0\nenddo")
        store, t = execute(p, {"N": 10}, trace=True)
        assert len(t) == 4  # 1, 4, 7, 10

    def test_step_loops_rejected_by_analysis(self):
        from repro.util.errors import DependenceError

        p = parse_program("param N\nreal A(0:N)\ndo I = 2..N, 2\n S1: A(I) = A(I-2)\nenddo")
        with pytest.raises(DependenceError):
            analyze_dependences(p)
