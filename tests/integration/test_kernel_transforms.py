"""Cross-kernel transformation matrix: apply a battery of elementary
transformations to every kernel and verify legality verdicts with the
semantic oracle — legality says yes ⟺ generated code is equivalent."""

import pytest

from repro.codegen import generate_code
from repro.dependence import analyze_dependences
from repro.instance import Layout
from repro.interp import check_equivalence
from repro.kernels import (
    cholesky, forward_substitution, lu_factorization, matmul,
    simplified_cholesky, triangular_solve,
)
from repro.legality import check_legality
from repro.transform import permutation, reversal, skew
from repro.util.errors import ReproError

KERNELS = {
    "simplified_cholesky": (simplified_cholesky, {"N": 7}),
    "cholesky": (cholesky, {"N": 5}),
    "lu": (lu_factorization, {"N": 5}),
    "trisolve": (triangular_solve, {"N": 7}),
    "forward_substitution": (forward_substitution, {"N": 7}),
    "matmul": (matmul, {"N": 4}),
}


def battery(layout):
    """Every adjacent interchange, every reversal, small skews."""
    loops = [c.var for c in layout.loop_coords()]
    out = []
    for a in loops:
        out.append(reversal(layout, a))
        for b in loops:
            if a < b:
                out.append(permutation(layout, a, b))
            if a != b:
                out.append(skew(layout, a, b, 1))
    return out


@pytest.mark.parametrize("name", sorted(KERNELS))
def test_legality_matches_oracle(name):
    factory, params = KERNELS[name]
    program = factory()
    layout = Layout(program)
    deps = analyze_dependences(program)
    legal_count = 0
    for t in battery(layout):
        report = check_legality(layout, t.matrix, deps)
        if not report.legal:
            continue
        legal_count += 1
        try:
            g = generate_code(program, t.matrix, deps)
        except ReproError as exc:
            pytest.fail(f"{name}: legal {t.description} failed codegen: {exc}")
        rep = check_equivalence(program, g.program, params, env_map=g.env_map())
        assert rep["ok"], (name, t.description, rep)
    # every kernel admits at least one legal transformation in the battery
    assert legal_count >= 1, name


def test_matmul_fully_permutable():
    """All 3! loop orders of matmul are legal (classic result)."""
    import itertools

    program = matmul()
    layout = Layout(program)
    deps = analyze_dependences(program)
    legal = 0
    for perm in itertools.permutations(["I", "J", "K"]):
        # realize the permutation as a product of interchanges
        t = None
        current = ["I", "J", "K"]
        from repro.transform import identity

        t = identity(layout)
        for target_pos, v in enumerate(perm):
            cur_pos = current.index(v)
            while cur_pos > target_pos:
                a, b = current[cur_pos - 1], current[cur_pos]
                t = t.then(permutation(layout, a, b))
                current[cur_pos - 1], current[cur_pos] = b, a
                cur_pos -= 1
        if check_legality(layout, t.matrix, deps).legal:
            legal += 1
    assert legal == 6


def test_trisolve_backward_variant():
    """Reversing the inner update loop of the triangular solve is legal
    (independent updates) and verified."""
    program = triangular_solve()
    layout = Layout(program)
    deps = analyze_dependences(program)
    t = reversal(layout, "I")
    r = check_legality(layout, t.matrix, deps)
    assert r.legal
    g = generate_code(program, t.matrix, deps)
    rep = check_equivalence(program, g.program, {"N": 8}, env_map=g.env_map())
    assert rep["ok"]


def test_forward_substitution_reorder_illegal():
    """Swapping the dot-product loop and the divide breaks the
    recurrence; legality must reject it."""
    from repro.transform import statement_reorder

    program = forward_substitution()
    layout = Layout(program)
    deps = analyze_dependences(program)
    t, _ = statement_reorder(layout, (0,), [1, 0])
    assert not check_legality(layout, t.matrix, deps).legal
