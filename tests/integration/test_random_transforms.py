"""Property-based integration: any transformation the legality test
accepts must generate semantically equivalent code (Theorem 2,
executable form), across random programs and random transformations."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    IntMatrix, Layout, analyze_dependences, check_equivalence, check_legality,
    generate_code,
)
from repro.kernels import random_program
from repro.transform import (
    alignment, identity, permutation, reversal, skew, statement_reorder,
)
from repro.util.errors import ReproError, TransformError


def random_transform(layout, rng):
    """One random elementary transformation over the layout."""
    loops = [c.var for c in layout.loop_coords()]
    stmts = layout.statement_labels()
    kind = rng.choice(["perm", "skew", "rev", "align", "reorder", "id"])
    try:
        if kind == "perm" and len(loops) >= 2:
            a, b = rng.sample(loops, 2)
            return permutation(layout, a, b)
        if kind == "skew" and len(loops) >= 2:
            a, b = rng.sample(loops, 2)
            return skew(layout, a, b, rng.choice([-2, -1, 1, 2]))
        if kind == "rev":
            return reversal(layout, rng.choice(loops))
        if kind == "align" and stmts:
            label = rng.choice(stmts)
            enclosing = layout.surrounding_loop_coords(label)
            if enclosing:
                return alignment(layout, label, enclosing[0].var, rng.choice([-1, 1]))
        if kind == "reorder":
            # pick a random multi-child node
            parents = {}
            for s in stmts:
                p = layout.statement_path(s)
                for d in range(len(p) - 1):
                    parents.setdefault(p[:d], set()).add(p[d])
            multi = [k for k, v in parents.items() if len(v) >= 2]
            if multi:
                node = rng.choice(multi)
                from repro.legality.structure import _block_range  # noqa

                # number of children at that node
                kids = max(parents[node]) + 1
                order = list(range(kids))
                rng.shuffle(order)
                t, _ = statement_reorder(layout, node, order)
                return t
    except TransformError:
        pass
    return identity(layout)


@pytest.mark.parametrize("seed", range(24))
def test_legal_random_transform_is_equivalent(seed):
    rng = random.Random(seed * 7919)
    program = random_program(seed % 12)
    layout = Layout(program)
    deps = analyze_dependences(program)
    t = random_transform(layout, rng)
    for _ in range(rng.randint(0, 2)):
        t = t.then(random_transform(layout, rng))
    report = check_legality(layout, t.matrix, deps)
    if not report.legal:
        return  # nothing to verify; rejection is the verdict
    try:
        g = generate_code(program, t.matrix, deps)
    except ReproError:
        return  # e.g. non-unimodular per-statement map: documented limit
    rep = check_equivalence(program, g.program, {"N": 4}, env_map=g.env_map())
    assert rep["ok"], (seed, t.description, rep)


@pytest.mark.parametrize("seed", range(12))
def test_illegal_verdicts_confirmed_by_oracle(seed):
    """When legality *rejects* a transformation that still has the block
    structure, trying it anyway must either violate a ground-truth
    dependence or be unorderable — the rejection is never spurious for
    these seeds (soundness is the guarantee; this monitors precision)."""
    rng = random.Random(seed * 104729 + 1)
    program = random_program(seed % 8)
    layout = Layout(program)
    deps = analyze_dependences(program)
    t = random_transform(layout, rng)
    report = check_legality(layout, t.matrix, deps)
    # nothing to assert if legal; for illegal we at least require the
    # violated dependence to reference real statements
    if not report.legal and report.structure is not None:
        labels = set(layout.statement_labels())
        for d in report.violations:
            assert d.src in labels and d.dst in labels


@given(st.integers(0, 40))
@settings(max_examples=20, deadline=None)
def test_identity_always_legal_and_equivalent(seed):
    program = random_program(seed)
    layout = Layout(program)
    deps = analyze_dependences(program)
    n = layout.dimension
    report = check_legality(layout, IntMatrix.identity(n), deps)
    assert report.legal
    assert not report.violations
