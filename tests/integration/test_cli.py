"""CLI tests (python -m repro)."""

import pytest

from repro.cli import main, parse_spec
from repro.util.errors import ReproError

SRC = """param N
real A(N)
do I = 1..N
  S1: A(I) = sqrt(A(I))
  do J = I+1..N
    S2: A(J) = A(J) / A(I)
  enddo
enddo
"""


@pytest.fixture()
def loopfile(tmp_path):
    f = tmp_path / "prog.loop"
    f.write_text(SRC)
    return str(f)


class TestParseSpec:
    def test_single(self, simp_chol_layout):
        t = parse_spec(simp_chol_layout, "permute(I,J)")
        assert t.matrix.is_permutation()

    def test_composition(self, simp_chol_layout):
        t = parse_spec(simp_chol_layout, "skew(I,J,-1); reverse(J)")
        assert t.matrix.is_unimodular()

    def test_alignment(self, simp_chol_layout):
        t = parse_spec(simp_chol_layout, "align(S1,I,1)")
        assert t.matrix[0, 2] == 1

    def test_scale(self, simp_chol_layout):
        t = parse_spec(simp_chol_layout, "scale(J,2)")
        assert t.matrix[3, 3] == 2

    def test_bad_spec(self, simp_chol_layout):
        with pytest.raises(ReproError):
            parse_spec(simp_chol_layout, "frobnicate(I)")
        with pytest.raises(ReproError):
            parse_spec(simp_chol_layout, "")
        with pytest.raises(ReproError):
            parse_spec(simp_chol_layout, "permute(I)")

    def test_unknown_loop_names_spec_part(self, simp_chol_layout):
        with pytest.raises(ReproError, match=r"permute\(I,Q\).*'Q'"):
            parse_spec(simp_chol_layout, "permute(I,Q)")

    def test_unknown_statement_names_spec_part(self, simp_chol_layout):
        with pytest.raises(ReproError, match=r"align\(S9,I,1\).*'S9'"):
            parse_spec(simp_chol_layout, "align(S9,I,1)")

    def test_non_integer_argument_names_spec_part(self, simp_chol_layout):
        with pytest.raises(ReproError, match=r"skew\(I,J,x\).*integer.*'x'"):
            parse_spec(simp_chol_layout, "skew(I,J,x)")

    def test_bad_part_in_composition_is_located(self, simp_chol_layout):
        with pytest.raises(ReproError, match=r"reverse\(K\)"):
            parse_spec(simp_chol_layout, "reverse(J); reverse(K)")


class TestCommands:
    def test_show(self, loopfile, capsys):
        assert main(["show", loopfile]) == 0
        out = capsys.readouterr().out
        assert "instance-vector layout" in out
        assert "S1: [I, 0, 1, I]" in out

    def test_deps(self, loopfile, capsys):
        assert main(["deps", loopfile]) == 0
        out = capsys.readouterr().out
        assert "flow S1->S2" in out

    def test_deps_refined(self, loopfile, capsys):
        assert main(["deps", loopfile, "--refine"]) == 0
        out = capsys.readouterr().out
        assert "[1, -1, 1, 0]" in out

    def test_check_legal(self, loopfile, capsys):
        assert main(["check", loopfile, "reverse(J)"]) == 0
        assert "LEGAL" in capsys.readouterr().out

    def test_check_illegal_exit_code(self, loopfile, capsys):
        assert main(["check", loopfile, "permute(I,J)"]) == 1
        assert "ILLEGAL" in capsys.readouterr().out

    def test_transform(self, loopfile, capsys):
        assert main(["transform", loopfile, "reverse(J)", "--simplify"]) == 0
        out = capsys.readouterr().out
        assert "do J = -N" in out

    def test_transform_to_file(self, loopfile, tmp_path, capsys):
        dest = str(tmp_path / "out.loop")
        assert main(["transform", loopfile, "reverse(J)", "-o", dest]) == 0
        assert "do J" in open(dest).read()

    def test_transform_illegal_errors(self, loopfile, capsys):
        # illegal-transform is the distinct exit code 3, so scripts can
        # tell "your schedule is illegal" from analysis/usage errors (2)
        rc = main(["transform", loopfile, "permute(I,J)"])
        assert rc == 3
        assert "error" in capsys.readouterr().err

    def test_run(self, loopfile, capsys):
        assert main(["run", loopfile, "-p", "N=4", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "A =" in out and "10 statement instances" in out

    def test_parallel(self, loopfile, capsys):
        assert main(["parallel", loopfile]) == 0
        out = capsys.readouterr().out
        assert "loop J: DOALL" in out
        assert "loop I: carries" in out

    def test_complete(self, tmp_path, capsys):
        from repro.ir import program_to_str
        from repro.kernels import cholesky

        f = tmp_path / "chol.loop"
        f.write_text(program_to_str(cholesky()))
        assert main(["complete", str(f), "--lead", "L"]) == 0
        out = capsys.readouterr().out
        assert "completed matrix" in out
        assert "S3" in out

    def test_missing_file(self, capsys):
        assert main(["show", "/nonexistent.loop"]) == 2


class TestReportCommand:
    def test_report(self, loopfile, capsys):
        assert main(["report", loopfile, "-p", "N=12"]) == 0
        out = capsys.readouterr().out
        assert "=== dependences ===" in out
        assert "DOALL" in out
        assert "unsplittable" in out or "splittable" in out
        assert "lead=" in out
        assert "=== observability metrics ===" in out
        assert "dependence.pairs_tested" in out


class TestObservabilityFlags:
    def test_profile_prints_span_tree_to_stderr(self, loopfile, capsys):
        assert main(["report", "--profile", loopfile, "-p", "N=8"]) == 0
        err = capsys.readouterr().err
        assert "--- span tree (wall time) ---" in err
        assert "cli.report" in err
        assert "dependence.analyze" in err
        # nonzero timings: at least one duration in ms or us
        assert " ms" in err or " us" in err
        # nesting: dependence.analyze is indented under cli.report
        lines = err.splitlines()
        root = next(l for l in lines if l.startswith("cli.report"))
        child = next(l for l in lines if "dependence.analyze" in l)
        assert child.startswith("  ")
        assert not root.startswith(" ")

    def test_profile_does_not_alter_stdout(self, loopfile, capsys):
        assert main(["transform", loopfile, "reverse(J)"]) == 0
        plain = capsys.readouterr()
        assert main(["transform", "--profile", loopfile, "reverse(J)"]) == 0
        profiled = capsys.readouterr()
        assert profiled.out == plain.out  # generated code is unchanged
        assert "--- span tree (wall time) ---" in profiled.err

    def test_trace_json_writes_valid_jsonl(self, loopfile, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.jsonl"
        assert main(["deps", loopfile, "--trace-json", str(trace)]) == 0
        lines = trace.read_text().splitlines()
        assert lines
        records = [json.loads(line) for line in lines]
        types = {r["type"] for r in records}
        assert {"span", "counter"} <= types
        assert any(
            r["type"] == "span" and r["name"] == "dependence.analyze"
            for r in records
        )

    def test_trace_json_unwritable_path_errors(self, loopfile, tmp_path, capsys):
        bad = str(tmp_path / "no-such-dir" / "t.jsonl")
        assert main(["deps", loopfile, "--trace-json", bad]) == 2
        assert "error" in capsys.readouterr().err

    def test_profile_check_exit_codes_preserved(self, loopfile, capsys):
        assert main(["check", "--profile", loopfile, "permute(I,J)"]) == 1
        captured = capsys.readouterr()
        assert "ILLEGAL" in captured.out
        assert "legality.check" in captured.err
