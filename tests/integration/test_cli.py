"""CLI tests (python -m repro)."""

import pytest

from repro.cli import main, parse_spec
from repro.instance import Layout
from repro.kernels import simplified_cholesky
from repro.util.errors import ReproError

SRC = """param N
real A(N)
do I = 1..N
  S1: A(I) = sqrt(A(I))
  do J = I+1..N
    S2: A(J) = A(J) / A(I)
  enddo
enddo
"""


@pytest.fixture()
def loopfile(tmp_path):
    f = tmp_path / "prog.loop"
    f.write_text(SRC)
    return str(f)


class TestParseSpec:
    def test_single(self, simp_chol_layout):
        t = parse_spec(simp_chol_layout, "permute(I,J)")
        assert t.matrix.is_permutation()

    def test_composition(self, simp_chol_layout):
        t = parse_spec(simp_chol_layout, "skew(I,J,-1); reverse(J)")
        assert t.matrix.is_unimodular()

    def test_alignment(self, simp_chol_layout):
        t = parse_spec(simp_chol_layout, "align(S1,I,1)")
        assert t.matrix[0, 2] == 1

    def test_scale(self, simp_chol_layout):
        t = parse_spec(simp_chol_layout, "scale(J,2)")
        assert t.matrix[3, 3] == 2

    def test_bad_spec(self, simp_chol_layout):
        with pytest.raises(ReproError):
            parse_spec(simp_chol_layout, "frobnicate(I)")
        with pytest.raises(ReproError):
            parse_spec(simp_chol_layout, "")
        with pytest.raises(ReproError):
            parse_spec(simp_chol_layout, "permute(I)")


class TestCommands:
    def test_show(self, loopfile, capsys):
        assert main(["show", loopfile]) == 0
        out = capsys.readouterr().out
        assert "instance-vector layout" in out
        assert "S1: [I, 0, 1, I]" in out

    def test_deps(self, loopfile, capsys):
        assert main(["deps", loopfile]) == 0
        out = capsys.readouterr().out
        assert "flow S1->S2" in out

    def test_deps_refined(self, loopfile, capsys):
        assert main(["deps", loopfile, "--refine"]) == 0
        out = capsys.readouterr().out
        assert "[1, -1, 1, 0]" in out

    def test_check_legal(self, loopfile, capsys):
        assert main(["check", loopfile, "reverse(J)"]) == 0
        assert "LEGAL" in capsys.readouterr().out

    def test_check_illegal_exit_code(self, loopfile, capsys):
        assert main(["check", loopfile, "permute(I,J)"]) == 1
        assert "ILLEGAL" in capsys.readouterr().out

    def test_transform(self, loopfile, capsys):
        assert main(["transform", loopfile, "reverse(J)", "--simplify"]) == 0
        out = capsys.readouterr().out
        assert "do J = -N" in out

    def test_transform_to_file(self, loopfile, tmp_path, capsys):
        dest = str(tmp_path / "out.loop")
        assert main(["transform", loopfile, "reverse(J)", "-o", dest]) == 0
        assert "do J" in open(dest).read()

    def test_transform_illegal_errors(self, loopfile, capsys):
        rc = main(["transform", loopfile, "permute(I,J)"])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_run(self, loopfile, capsys):
        assert main(["run", loopfile, "-p", "N=4", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "A =" in out and "10 statement instances" in out

    def test_parallel(self, loopfile, capsys):
        assert main(["parallel", loopfile]) == 0
        out = capsys.readouterr().out
        assert "loop J: DOALL" in out
        assert "loop I: carries" in out

    def test_complete(self, tmp_path, capsys):
        from repro.ir import program_to_str
        from repro.kernels import cholesky

        f = tmp_path / "chol.loop"
        f.write_text(program_to_str(cholesky()))
        assert main(["complete", str(f), "--lead", "L"]) == 0
        out = capsys.readouterr().out
        assert "completed matrix" in out
        assert "S3" in out

    def test_missing_file(self, capsys):
        assert main(["show", "/nonexistent.loop"]) == 2


class TestReportCommand:
    def test_report(self, loopfile, capsys):
        assert main(["report", loopfile, "-p", "N=12"]) == 0
        out = capsys.readouterr().out
        assert "=== dependences ===" in out
        assert "DOALL" in out
        assert "unsplittable" in out or "splittable" in out
        assert "lead=" in out
