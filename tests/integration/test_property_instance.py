"""Property tests of the instance-vector machinery over random
programs: Theorem 1, L/L⁻¹ roundtrips, and padded-position invariants
(Lemmas 1 and 2)."""

from hypothesis import given, settings, strategies as st

from repro.instance import (
    DynamicInstance, Layout, check_order_isomorphism, from_vector,
    instance_vector,
)
from repro.instance.order import injectivity_violations
from repro.interp import execute
from repro.kernels import random_program


def trace_instances(program, params):
    lay = Layout(program)
    _, trace = execute(program, params, trace=True)
    out = []
    for rec in trace.records:
        order = [c.var for c in lay.surrounding_loop_coords(rec.label)]
        out.append(DynamicInstance(rec.label, tuple(rec.env[v] for v in order)))
    return lay, out


@given(st.integers(0, 60))
@settings(max_examples=25, deadline=None)
def test_theorem1_on_random_programs(seed):
    p = random_program(seed)
    lay, insts = trace_instances(p, {"N": 3})
    # sample at most 40 instances to keep the quadratic check fast
    sample = insts[:: max(1, len(insts) // 40)]
    assert check_order_isomorphism(p, sample) == []
    assert injectivity_violations(lay, insts) == []


@given(st.integers(0, 60))
@settings(max_examples=25, deadline=None)
def test_l_inverse_roundtrip(seed):
    p = random_program(seed)
    lay, insts = trace_instances(p, {"N": 3})
    for d in insts[:50]:
        v = instance_vector(lay, d)
        assert from_vector(lay, v) == d


@given(st.integers(0, 60))
@settings(max_examples=25, deadline=None)
def test_lemma1_padded_positions_constant_per_statement(seed):
    """Lemma 1: all instances of a statement share padded positions —
    structurally true in our Layout; verify the entries at padded
    positions always equal a surrounding label or 0."""
    p = random_program(seed)
    lay, insts = trace_instances(p, {"N": 3})
    for d in insts[:50]:
        v = instance_vector(lay, d)
        env = d.env(lay)
        for pos in lay.padded_positions(d.label):
            coord = lay.coords[pos]
            src = lay.pad_source(coord, d.label)
            expected = env[src.var] if src is not None else 0
            assert v[pos] == expected


@given(st.integers(0, 60))
@settings(max_examples=20, deadline=None)
def test_lemma2_perfect_subnests(seed):
    """Lemma 2: a statement nested in every loop of its path has no
    padded positions iff it passes through every loop coordinate."""
    p = random_program(seed)
    lay = Layout(p)
    all_loops = {c.path for c in lay.loop_coords()}
    for label in lay.statement_labels():
        surrounding = {c.path for c in lay.surrounding_loop_coords(label)}
        padded = lay.padded_positions(label)
        assert (len(padded) == 0) == (surrounding == all_loops)


@given(st.integers(0, 60))
@settings(max_examples=20, deadline=None)
def test_layout_structure_invariants(seed):
    p = random_program(seed)
    lay = Layout(p)
    # every multi-child node contributes exactly c edge coordinates
    from collections import Counter

    by_node = Counter(c.path for c in lay.edge_coords())
    for path, count in by_node.items():
        children = p.body if not path else lay.node_at(path).body
        assert count == len(children) >= 2
    # coordinate count: loops + edges
    assert lay.dimension == len(lay.loop_coords()) + len(lay.edge_coords())
