"""Exception hierarchy contract: one catch-all base, per-subsystem
subclasses, position-carrying parse errors."""

import pytest

from repro.util import (
    CodegenError, CompletionError, DependenceError, InterpError, IRError,
    LayoutError, LegalityError, LinalgError, ParseError, PolyhedronError,
    ReproError, TransformError,
)


def test_all_derive_from_repro_error():
    for exc in (
        LinalgError, PolyhedronError, ParseError, IRError, LayoutError,
        DependenceError, TransformError, LegalityError, CodegenError,
        CompletionError, InterpError,
    ):
        assert issubclass(exc, ReproError)


def test_legality_is_transform_error():
    assert issubclass(LegalityError, TransformError)


def test_parse_error_position():
    e = ParseError("bad token", line=3, column=7)
    assert e.line == 3 and e.column == 7
    assert "line 3" in str(e) and "col 7" in str(e)


def test_parse_error_without_position():
    e = ParseError("oops")
    assert e.line is None
    assert str(e) == "oops"


def test_catching_base_catches_subsystem_errors():
    from repro.ir import parse_program

    with pytest.raises(ReproError):
        parse_program("do I = ..\nenddo")
