"""Block-structure recovery (Figure 6 NewAST)."""

import pytest

from repro.legality import recover_structure
from repro.linalg import IntMatrix
from repro.transform import skew, statement_reorder
from repro.util.errors import CodegenError


class TestRecovery:
    def test_identity_preserves_ast(self, simp_chol, simp_chol_layout):
        st = recover_structure(simp_chol_layout, IntMatrix.identity(4))
        assert [s.label for s in st.skeleton.statements()] == ["S1", "S2"]
        assert st.child_order[(0,)] == [0, 1]

    def test_loop_transform_preserves_ast(self, simp_chol_layout):
        t = skew(simp_chol_layout, "I", "J", -1)
        st = recover_structure(simp_chol_layout, t.matrix)
        assert st.child_order[(0,)] == [0, 1]

    def test_reorder_recovered(self, simp_chol_layout):
        t, p2 = statement_reorder(simp_chol_layout, (0,), [1, 0])
        st = recover_structure(simp_chol_layout, t.matrix)
        assert st.child_order[(0,)] == [1, 0]
        assert [s.label for s in st.skeleton.statements()] == ["S2", "S1"]
        # skeleton equals the direct reorder result
        assert str(st.skeleton.body) == str(p2.body)

    def test_three_child_reorder(self, chol_layout):
        t, _ = statement_reorder(chol_layout, (0,), [2, 0, 1])
        st = recover_structure(chol_layout, t.matrix)
        assert st.child_order[(0,)] == [2, 0, 1]

    def test_new_layout_dimension_matches(self, chol_layout):
        t, _ = statement_reorder(chol_layout, (0,), [1, 2, 0])
        st = recover_structure(chol_layout, t.matrix)
        assert st.new_layout.dimension == chol_layout.dimension

    def test_old_to_new_paths(self, chol_layout):
        t, _ = statement_reorder(chol_layout, (0,), [2, 0, 1])
        st = recover_structure(chol_layout, t.matrix)
        # old child 2 (the J loop subtree) becomes new child 0
        assert st.old_to_new_path[(0, 2)] == (0, 0)
        assert st.old_to_new_path[(0, 0)] == (0, 1)

    def test_syntactic_order_in_new_ast(self, chol_layout):
        t, _ = statement_reorder(chol_layout, (0,), [2, 0, 1])
        st = recover_structure(chol_layout, t.matrix)
        assert st.syntactically_before("S3", "S1")
        assert not st.syntactically_before("S2", "S3")


class TestRejection:
    def test_wrong_shape(self, simp_chol_layout):
        with pytest.raises(CodegenError):
            recover_structure(simp_chol_layout, IntMatrix.identity(3))

    def test_non_unit_edge_row(self, simp_chol_layout):
        m = IntMatrix.identity(4).tolist()
        m[1][1] = 2  # edge row scaled: illegal
        with pytest.raises(CodegenError):
            recover_structure(simp_chol_layout, IntMatrix(m))

    def test_edge_row_mixing_loop_column(self, simp_chol_layout):
        m = IntMatrix.identity(4).tolist()
        m[1][0] = 1  # edge row also picks up the loop column
        with pytest.raises(CodegenError):
            recover_structure(simp_chol_layout, IntMatrix(m))

    def test_duplicate_edge_assignment(self, simp_chol_layout):
        m = IntMatrix.identity(4).tolist()
        m[2] = m[1]  # both edge rows select the same old edge
        with pytest.raises(CodegenError):
            recover_structure(simp_chol_layout, IntMatrix(m))

    def test_label_rows_are_unconstrained(self, simp_chol_layout):
        # a wild loop row is fine structurally (legality may still fail)
        m = IntMatrix.identity(4).tolist()
        m[0] = [3, 0, -2, 7]
        st = recover_structure(simp_chol_layout, IntMatrix(m))
        assert st.child_order[(0,)] == [0, 1]
