"""Definition-6 legality tests."""

import pytest

from repro.dependence import DepEntry, analyze_dependences
from repro.legality import DepStatus, assert_legal, check_legality, lex_status
from repro.linalg import IntMatrix
from repro.transform import (
    alignment, compose, permutation, reversal, skew, statement_reorder,
)
from repro.util.errors import LegalityError


class TestLexStatus:
    def test_positive(self):
        assert lex_status((DepEntry.const(0), DepEntry.plus())) == "positive"
        assert lex_status((DepEntry.const(2),)) == "positive"

    def test_zero(self):
        assert lex_status((DepEntry.const(0), DepEntry.const(0))) == "zero-or-positive"
        assert lex_status(()) == "zero-or-positive"

    def test_zero_or_positive_falls_through(self):
        assert lex_status((DepEntry(0, 10), DepEntry.const(0))) == "zero-or-positive"

    def test_may_be_negative(self):
        assert lex_status((DepEntry.minus(),)) == "may-be-negative"
        assert lex_status((DepEntry.star(), DepEntry.plus())) == "may-be-negative"

    def test_definite_positive_after_fallthrough(self):
        assert lex_status((DepEntry(0, 5), DepEntry.plus())) == "positive"


class TestSimplifiedCholesky:
    def test_identity_is_legal(self, simp_chol, simp_chol_layout):
        deps = analyze_dependences(simp_chol)
        r = check_legality(simp_chol_layout, IntMatrix.identity(4), deps)
        assert r.legal
        assert not r.unsatisfied()

    def test_plain_interchange_illegal(self, simp_chol, simp_chol_layout):
        deps = analyze_dependences(simp_chol)
        t = permutation(simp_chol_layout, "I", "J")
        r = check_legality(simp_chol_layout, t.matrix, deps)
        assert not r.legal
        # the violated dependence is the back edge S2 -> S1
        assert any(d.src == "S2" and d.dst == "S1" for d in r.violations)

    def test_statement_reorder_illegal(self, simp_chol, simp_chol_layout):
        deps = analyze_dependences(simp_chol)
        t, _ = statement_reorder(simp_chol_layout, (0,), [1, 0])
        r = check_legality(simp_chol_layout, t.matrix, deps)
        assert not r.legal

    def test_inner_reversal_legal(self, simp_chol, simp_chol_layout):
        """Reversing J only flips the order of independent updates."""
        deps = analyze_dependences(simp_chol)
        t = reversal(simp_chol_layout, "J")
        r = check_legality(simp_chol_layout, t.matrix, deps)
        assert r.legal

    def test_outer_reversal_illegal(self, simp_chol, simp_chol_layout):
        deps = analyze_dependences(simp_chol)
        t = reversal(simp_chol_layout, "I")
        r = check_legality(simp_chol_layout, t.matrix, deps)
        assert not r.legal

    def test_assert_legal_raises(self, simp_chol, simp_chol_layout):
        deps = analyze_dependences(simp_chol)
        t = permutation(simp_chol_layout, "I", "J")
        with pytest.raises(LegalityError):
            assert_legal(simp_chol_layout, t.matrix, deps)

    def test_bad_block_structure_is_illegal(self, simp_chol, simp_chol_layout):
        deps = analyze_dependences(simp_chol)
        m = IntMatrix.identity(4).tolist()
        m[1][1] = 2
        r = check_legality(simp_chol_layout, IntMatrix(m), deps)
        assert not r.legal and r.structure is None


class TestAugmentationExample:
    """§5.4: skewing is legal; the S1 self-dependence goes unsatisfied."""

    def test_skew_legal_with_unsatisfied(self, aug, aug_layout):
        deps = analyze_dependences(aug)
        t = skew(aug_layout, "I", "J", -1)
        r = check_legality(aug_layout, t.matrix, deps)
        assert r.legal
        unsat = r.unsatisfied("S1")
        assert len(unsat) == 1
        assert unsat[0].src == unsat[0].dst == "S1"

    def test_cross_statement_dep_satisfied_by_loops(self, aug, aug_layout):
        deps = analyze_dependences(aug)
        t = skew(aug_layout, "I", "J", -1)
        r = check_legality(aug_layout, t.matrix, deps)
        statuses = {
            (d.src, d.dst): s for d, s in r.statuses if d.src != d.dst
        }
        assert statuses[("S2", "S1")] == DepStatus.SATISFIED_BY_LOOPS


class TestCholesky:
    def test_identity_legal(self, chol, chol_layout):
        deps = analyze_dependences(chol)
        assert check_legality(chol_layout, IntMatrix.identity(7), deps).legal

    def test_inner_jl_interchange(self, chol, chol_layout):
        """Interchanging the J and L loops of the update is legal: the
        update instances within one K are independent."""
        deps = analyze_dependences(chol)
        t = permutation(chol_layout, "J", "L")
        r = check_legality(chol_layout, t.matrix, deps)
        assert r.legal

    def test_alignment_preserving_legality(self):
        from repro.instance import Layout
        from repro.ir import parse_program

        # S2 consumes A(I-1): shifting S1 one iteration later still puts
        # the producer in the same outer iteration, before the consumer
        p = parse_program(
            "param N\nreal A(0:N+1), B(N)\n"
            "do I = 1..N\n"
            "  S1: A(I) = f(I)\n"
            "  do J = 1..N\n"
            "    S2: B(J) = B(J) + A(I-1)\n"
            "  enddo\n"
            "enddo"
        )
        lay = Layout(p)
        deps = analyze_dependences(p)
        t = alignment(lay, "S1", "I", 1)
        r = check_legality(lay, t.matrix, deps)
        assert r.legal

    def test_alignment_both_directions_illegal_on_cholesky(self, simp_chol, simp_chol_layout):
        # simplified Cholesky tolerates no shift of S1 in either direction
        deps = analyze_dependences(simp_chol)
        for off in (-1, 1):
            t = alignment(simp_chol_layout, "S1", "I", off)
            assert not check_legality(simp_chol_layout, t.matrix, deps).legal

    def test_alignment_breaking_legality(self, simp_chol, simp_chol_layout):
        deps = analyze_dependences(simp_chol)
        # shifting S1 one iteration later puts sqrt after its first use
        t = alignment(simp_chol_layout, "S1", "I", 1)
        r = check_legality(simp_chol_layout, t.matrix, deps)
        assert not r.legal

    def test_composed_transforms_checked_as_one(self, simp_chol, simp_chol_layout):
        deps = analyze_dependences(simp_chol)
        t = compose(
            reversal(simp_chol_layout, "J"),
            reversal(simp_chol_layout, "J"),
        )
        assert check_legality(simp_chol_layout, t.matrix, deps).legal

    def test_report_str(self, simp_chol, simp_chol_layout):
        deps = analyze_dependences(simp_chol)
        r = check_legality(simp_chol_layout, IntMatrix.identity(4), deps)
        text = str(r)
        assert "LEGAL" in text and "S1->S2" in text
